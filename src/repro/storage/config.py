"""Testbed descriptions.

A :class:`TestbedConfig` captures everything about the simulated machine that
is *not* the file system or the workload: RAM size, how much of it the OS
reserves (and therefore how much page cache is actually available -- the
quantity that makes Figure 1 so fragile), the device model, the cache policy
and the software-path costs.

``paper_testbed()`` reproduces the paper's machine: an Intel Xeon 2.8 GHz with
RAM artificially limited to 512 MB and a single Maxtor 7L250S0 SATA disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.storage.cache import CachePolicy, PageCache
from repro.storage.device import BlockDevice, make_scheduler
from repro.storage.disk import (
    MAXTOR_7L250S0,
    DeviceModel,
    DiskGeometry,
    MechanicalDisk,
    RamDisk,
    SolidStateDisk,
)
from repro.storage.flash import (
    FlashTranslationLayer,
    default_flash_geometry,
    precondition_ssd,
)

MiB = 1024 * 1024
GiB = 1024 * MiB


def _flash_capacity(testbed: "TestbedConfig") -> int:
    """Logical FTL capacity for a testbed: 8x RAM, clamped to [1, 4] GiB.

    Tracking the machine keeps whole-device preconditioning cheap on the
    shrunken testbeds the tests and ``--quick`` runs use, while the paper
    testbed gets the full 4 GiB device.
    """
    return min(4 * GiB, max(1 * GiB, 8 * testbed.ram_bytes))


def _ftl_fresh(testbed: "TestbedConfig") -> DeviceModel:
    return FlashTranslationLayer(default_flash_geometry(_flash_capacity(testbed)))


#: Memoised preconditioned FTL state per logical capacity.  Preconditioning
#: is a pure function of (geometry, default arguments), so the first
#: ``ssd-ftl-steady`` construction per capacity pays the fill+churn cost and
#: every later one (each repetition of every steady cell) restores the same
#: exported state -- bit-identical, at a fraction of the cost.  Per-process,
#: so parallel workers each precondition once and stay deterministic.
_STEADY_FTL_STATES: Dict[int, Dict] = {}


def _ftl_steady(testbed: "TestbedConfig") -> DeviceModel:
    capacity = _flash_capacity(testbed)
    model = FlashTranslationLayer(default_flash_geometry(capacity))
    state = _STEADY_FTL_STATES.get(capacity)
    if state is None:
        precondition_ssd(model)
        _STEADY_FTL_STATES[capacity] = model.export_state()
    else:
        model.restore_state(state)
    return model


#: Registry of device-model factories by name, mirroring ``FS_REGISTRY``:
#: the single name->factory resolver behind ``TestbedConfig.device_kind`` and
#: the experiment grid's ``device`` axis.  Each factory receives the testbed
#: so device sizing (e.g. the ramdisk's capacity) can track the machine.
#:
#: ``ssd`` is the *legacy* stateless SSD model, kept byte-for-byte compatible
#: so existing cache keys stay valid; ``ssd-ftl`` is the stateful NAND model
#: (page-mapped FTL, garbage collection, wear, discard support).
#: ``ssd-ftl-fresh`` is an explicit alias of ``ssd-ftl`` and
#: ``ssd-ftl-steady`` the same device preconditioned to steady state, so the
#: fresh-vs-steady scenario family is a plain two-valued ``device`` axis.
DEVICE_REGISTRY: Dict[str, Callable[["TestbedConfig"], DeviceModel]] = {
    "hdd": lambda testbed: MechanicalDisk(testbed.disk_geometry),
    "ssd": lambda testbed: SolidStateDisk(),
    "ramdisk": lambda testbed: RamDisk(capacity_bytes=max(4 * GiB, 8 * testbed.ram_bytes)),
    "ssd-ftl": _ftl_fresh,
    "ssd-ftl-fresh": _ftl_fresh,
    "ssd-ftl-steady": _ftl_steady,
}

#: Every registered device kind, in registry order.
DEFAULT_DEVICE_KINDS = tuple(DEVICE_REGISTRY)


@dataclass(frozen=True)
class CpuCosts:
    """Software-path costs charged by the VFS, in nanoseconds.

    These model the parts of a real system that are pure CPU work: entering
    the kernel, looking up the page in the radix tree, and copying the page to
    user space.  They are what a "warm cache" benchmark actually measures.
    """

    syscall_overhead_ns: float = 1_500.0
    page_lookup_ns: float = 250.0
    page_copy_ns_per_4k: float = 900.0
    path_component_lookup_ns: float = 800.0
    #: Multiplicative spread (log-normal sigma) applied to CPU costs.
    jitter_sigma: float = 0.15

    def validate(self) -> None:
        """Raise ``ValueError`` if any cost is negative."""
        for name in (
            "syscall_overhead_ns",
            "page_lookup_ns",
            "page_copy_ns_per_4k",
            "path_component_lookup_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")


@dataclass(frozen=True)
class TestbedConfig:
    """A complete description of the simulated machine.

    Attributes
    ----------
    name:
        Human-readable label used in reports.
    ram_bytes:
        Total physical memory.
    os_reserved_bytes:
        Memory consumed by the kernel, daemons and anonymous pages; the page
        cache gets what is left.  The paper observes that a 410 MB file was
        the largest that fit in the cache of their 512 MB machine, implying
        roughly 100 MB reserved.
    page_size:
        Page size in bytes.
    device_kind:
        Any name registered in :data:`DEVICE_REGISTRY` (``"hdd"``,
        ``"ssd"``, ``"ramdisk"``, ``"ssd-ftl"``, ``"ssd-ftl-fresh"``,
        ``"ssd-ftl-steady"``, ...).
    disk_geometry:
        Geometry used when ``device_kind == "hdd"``.
    cache_policy:
        Page cache eviction policy.
    io_scheduler:
        Name of the block-layer scheduler (``noop``, ``elevator``, ``deadline``).
    cpu:
        Software path costs.
    """

    name: str = "paper-testbed"
    ram_bytes: int = 512 * MiB
    os_reserved_bytes: int = 102 * MiB
    page_size: int = 4096
    device_kind: str = "hdd"
    disk_geometry: DiskGeometry = MAXTOR_7L250S0
    cache_policy: CachePolicy = CachePolicy.LRU
    io_scheduler: str = "noop"
    cpu: CpuCosts = field(default_factory=CpuCosts)

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise ``ValueError`` for impossible configurations."""
        if self.ram_bytes <= 0:
            raise ValueError("ram_bytes must be positive")
        if not (0 <= self.os_reserved_bytes < self.ram_bytes):
            raise ValueError("os_reserved_bytes must be in [0, ram_bytes)")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.device_kind not in DEVICE_REGISTRY:
            known = ", ".join(DEVICE_REGISTRY)
            raise ValueError(f"unknown device_kind: {self.device_kind!r} (known: {known})")
        self.cpu.validate()
        if self.device_kind == "hdd":
            self.disk_geometry.validate()

    # ------------------------------------------------------------ derived
    @property
    def page_cache_bytes(self) -> int:
        """Memory available to the page cache."""
        return self.ram_bytes - self.os_reserved_bytes

    @property
    def page_cache_pages(self) -> int:
        """Page cache capacity in pages."""
        return self.page_cache_bytes // self.page_size

    # ------------------------------------------------------------ builders
    def build_device_model(self) -> DeviceModel:
        """Instantiate the configured device model (via :data:`DEVICE_REGISTRY`)."""
        try:
            factory = DEVICE_REGISTRY[self.device_kind]
        except KeyError:
            known = ", ".join(DEVICE_REGISTRY)
            raise ValueError(
                f"unknown device_kind: {self.device_kind!r} (known: {known})"
            ) from None
        return factory(self)

    def build_block_device(self) -> BlockDevice:
        """Instantiate the block device (device model + scheduler)."""
        return BlockDevice(self.build_device_model(), scheduler=make_scheduler(self.io_scheduler))

    def build_page_cache(self) -> PageCache:
        """Instantiate the page cache sized to the available memory."""
        return PageCache(
            self.page_cache_pages, policy=self.cache_policy, page_size=self.page_size
        )

    def with_ram(self, ram_bytes: int) -> "TestbedConfig":
        """Return a copy with a different RAM size (other fields unchanged)."""
        return replace(self, ram_bytes=ram_bytes)

    def with_cache_policy(self, policy: CachePolicy) -> "TestbedConfig":
        """Return a copy using a different cache eviction policy."""
        return replace(self, cache_policy=policy)

    def describe(self) -> str:
        """One-line human-readable description for report headers."""
        return (
            f"{self.name}: RAM {self.ram_bytes // MiB} MiB "
            f"({self.page_cache_bytes // MiB} MiB page cache), "
            f"{self.device_kind}, cache={self.cache_policy.value}, "
            f"scheduler={self.io_scheduler}"
        )


def paper_testbed() -> TestbedConfig:
    """The paper's testbed: 512 MB RAM, single 7200 RPM SATA disk, LRU cache."""
    config = TestbedConfig()
    config.validate()
    return config


def scaled_testbed(scale: float = 0.125, name: Optional[str] = None) -> TestbedConfig:
    """A proportionally shrunken testbed for fast tests and CI runs.

    Scaling RAM (and the OS reservation) by ``scale`` moves the Figure-1 cliff
    to ``scale`` times the paper's file sizes while preserving its shape; the
    unit tests rely on this to exercise full warm-up cycles in milliseconds.
    """
    if not (0 < scale <= 1):
        raise ValueError("scale must be in (0, 1]")
    base = paper_testbed()
    config = replace(
        base,
        name=name or f"scaled-testbed-{scale:g}",
        ram_bytes=max(1, int(base.ram_bytes * scale)),
        os_reserved_bytes=max(0, int(base.os_reserved_bytes * scale)),
    )
    config.validate()
    return config


def ssd_testbed() -> TestbedConfig:
    """A modern-ish variant of the testbed with an SSD instead of the SATA disk.

    Uses the legacy stateless ``ssd`` model.  Used by examples to show how
    the transition region (and therefore the fragility) changes when the
    device latency gap narrows.
    """
    config = replace(paper_testbed(), name="ssd-testbed", device_kind="ssd")
    config.validate()
    return config


def ssd_ftl_testbed(steady: bool = False) -> TestbedConfig:
    """The paper testbed over the stateful FTL SSD model.

    ``steady=True`` starts every stack from a deterministically
    preconditioned device (see
    :func:`repro.storage.flash.precondition_ssd`); the default is
    fresh-out-of-box.  The two variants are the endpoints of the
    ``device=ssd-ftl-fresh,ssd-ftl-steady`` experiment axis.
    """
    kind = "ssd-ftl-steady" if steady else "ssd-ftl-fresh"
    config = replace(paper_testbed(), name=f"{kind}-testbed", device_kind=kind)
    config.validate()
    return config
