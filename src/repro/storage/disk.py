"""Device models: mechanical disk, SSD and RAM disk.

A device model answers one question: *how long does this block request take*?
Latency is returned in nanoseconds of simulated time and is composed from the
mechanical (or flash) characteristics of the device:

* :class:`MechanicalDisk` -- seek curve, rotational latency, zoned transfer
  rate and an on-board track (segment) cache.  The default geometry is
  modelled on the paper's testbed drive, a Maxtor 7L250S0 (250 GB, 7200 RPM
  SATA).
* :class:`SolidStateDisk` -- flat read latency, higher write latency, channel
  parallelism for large transfers.
* :class:`RamDisk` -- transfer-rate-only device, useful for isolating the
  software stack in nano-benchmarks ("I/O dimension" with the device removed).

Device models are deliberately stateful (head position, track-cache contents)
because that statefulness is exactly what makes disk benchmarks fragile.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from abc import ABC, abstractmethod
from typing import Optional

from repro.obs.metrics import MetricSource
from repro.storage.clock import NS_PER_MS, NS_PER_SEC


@dataclass(frozen=True)
class DiskGeometry:
    """Physical description of a mechanical disk.

    Attributes
    ----------
    capacity_bytes:
        Usable capacity of the device.
    rpm:
        Spindle speed; rotational latency is uniform in ``[0, 60/rpm)``.
    avg_seek_ms:
        Manufacturer-style average seek time.
    track_to_track_seek_ms:
        Minimum (adjacent-track) seek time.
    full_stroke_seek_ms:
        Maximum (full-stroke) seek time.
    max_transfer_mb_s:
        Sustained media transfer rate at the outer zone.
    min_transfer_mb_s:
        Sustained media transfer rate at the inner zone.
    track_cache_bytes:
        Size of the on-board segment cache used for read lookahead.
    sector_bytes:
        Sector size (512 for the paper-era drive).
    """

    capacity_bytes: int = 250 * 10 ** 9
    rpm: int = 7200
    avg_seek_ms: float = 9.0
    track_to_track_seek_ms: float = 0.8
    full_stroke_seek_ms: float = 17.0
    max_transfer_mb_s: float = 65.0
    min_transfer_mb_s: float = 35.0
    track_cache_bytes: int = 8 * 1024 * 1024
    sector_bytes: int = 512

    def rotation_time_ns(self) -> float:
        """Time for one full platter rotation, in nanoseconds."""
        return 60.0 / self.rpm * NS_PER_SEC

    def validate(self) -> None:
        """Raise ``ValueError`` if the geometry is internally inconsistent."""
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")
        if not (0 < self.track_to_track_seek_ms <= self.avg_seek_ms <= self.full_stroke_seek_ms):
            raise ValueError(
                "expected track_to_track <= avg <= full_stroke seek times, got "
                f"{self.track_to_track_seek_ms}, {self.avg_seek_ms}, {self.full_stroke_seek_ms}"
            )
        if self.min_transfer_mb_s <= 0 or self.max_transfer_mb_s < self.min_transfer_mb_s:
            raise ValueError("transfer rates must satisfy 0 < min <= max")
        if self.sector_bytes <= 0:
            raise ValueError("sector_bytes must be positive")


#: Geometry of the paper's testbed drive (Maxtor 7L250S0-class SATA disk).
MAXTOR_7L250S0 = DiskGeometry(
    capacity_bytes=250 * 10 ** 9,
    rpm=7200,
    avg_seek_ms=9.0,
    track_to_track_seek_ms=0.8,
    full_stroke_seek_ms=17.0,
    max_transfer_mb_s=65.0,
    min_transfer_mb_s=37.0,
    track_cache_bytes=8 * 1024 * 1024,
)


@dataclass
class DeviceStats(MetricSource):
    """Operation counters kept by every device model.

    The flash-specific counters (``discards`` through ``gc_time_ns``) stay
    zero on devices without an FTL; they are part of the shared container so
    any telemetry consumer can read one uniform surface.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_ns: float = 0.0
    seeks: int = 0
    track_cache_hits: int = 0
    #: TRIM/discard commands served and the logical bytes they invalidated.
    discards: int = 0
    bytes_discarded: int = 0
    #: NAND page programs, split into host-induced and GC-relocation writes:
    #: ``pages_programmed`` counts every program; ``pages_moved`` the subset
    #: the garbage collector relocated.  Their ratio is write amplification.
    pages_programmed: int = 0
    pages_moved: int = 0
    #: Block erases and garbage-collection activity.
    erases: int = 0
    gc_runs: int = 0
    gc_time_ns: float = 0.0

    #: Included in :meth:`MetricSource.snapshot` alongside the raw counters.
    derived_metrics = ("write_amplification",)

    def total_ops(self) -> int:
        """Total number of read and write operations."""
        return self.reads + self.writes

    @property
    def write_amplification(self) -> float:
        """Physical page programs per host-induced page program (>= 1.0).

        Returns 0.0 before any host write has reached the medium (no
        meaningful ratio exists yet); stateless device models therefore
        always report 0.0.
        """
        host_pages = self.pages_programmed - self.pages_moved
        if host_pages <= 0:
            return 0.0
        return self.pages_programmed / host_pages


class DeviceModel(ABC):
    """Interface shared by all device models."""

    #: True when the device honours discard/TRIM commands.  The VFS drops
    #: discard requests before they reach non-supporting devices (exactly
    #: like a real block layer), so models that leave this False keep their
    #: service-time behaviour bit-identical whether or not the file system
    #: above them issues discards.
    supports_discard: bool = False

    #: When true (set by ``StorageStack.attach_tracer``), latency methods
    #: leave their exact service-time decomposition in ``last_components``
    #: for the tracer.  Components are copies of already-computed locals --
    #: capturing them never draws RNG or changes float arithmetic, so traced
    #: service times are bit-identical to untraced ones.
    component_trace_enabled: bool = False
    #: The last request's ``{component: ns}`` decomposition (tracing only).
    last_components = None

    def __init__(self, capacity_bytes: int, sector_bytes: int = 512) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if sector_bytes <= 0:
            raise ValueError("sector_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.sector_bytes = int(sector_bytes)
        self.stats = DeviceStats()

    # -- abstract service-time hooks ----------------------------------------
    @abstractmethod
    def read_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Service time for reading ``nbytes`` starting at ``offset_bytes``."""

    @abstractmethod
    def write_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Service time for writing ``nbytes`` starting at ``offset_bytes``."""

    # -- public entry points --------------------------------------------------
    def read(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Account a read and return its service time in nanoseconds."""
        self._check_extent(offset_bytes, nbytes)
        if self.component_trace_enabled:
            self.last_components = None
        latency = self.read_latency_ns(offset_bytes, nbytes, rng)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.busy_time_ns += latency
        return latency

    def write(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Account a write and return its service time in nanoseconds."""
        self._check_extent(offset_bytes, nbytes)
        if self.component_trace_enabled:
            self.last_components = None
        latency = self.write_latency_ns(offset_bytes, nbytes, rng)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.busy_time_ns += latency
        return latency

    def discard(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Account a discard/TRIM and return its service time in nanoseconds.

        Devices that do not support discard serve it as a free no-op (the
        block layer should not have sent it; swallowing it keeps the model
        robust against callers that skip the capability check).
        """
        self._check_extent(offset_bytes, nbytes)
        if not self.supports_discard:
            return 0.0
        if self.component_trace_enabled:
            self.last_components = None
        latency = self.discard_latency_ns(offset_bytes, nbytes, rng)
        self.stats.discards += 1
        self.stats.bytes_discarded += nbytes
        self.stats.busy_time_ns += latency
        return latency

    def discard_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Service time of a discard; models supporting discard override this."""
        return 0.0

    def _check_extent(self, offset_bytes: int, nbytes: int) -> None:
        if offset_bytes < 0 or nbytes <= 0:
            raise ValueError("offset must be >= 0 and nbytes > 0")
        if offset_bytes + nbytes > self.capacity_bytes:
            raise ValueError(
                f"request [{offset_bytes}, {offset_bytes + nbytes}) exceeds device "
                f"capacity {self.capacity_bytes}"
            )

    def reset_state(self) -> None:
        """Reset dynamic state (head position, caches) and statistics."""
        self.stats.reset()


class MechanicalDisk(DeviceModel):
    """A seek/rotate/transfer model of a single-actuator mechanical disk.

    The model keeps the current head position (as a byte offset, standing in
    for the cylinder) and a small read lookahead ("track") cache.  Service
    time for a read is::

        seek(distance) + rotational_delay + transfer(nbytes, zone)

    unless the request is satisfied from the track cache, in which case only
    an electronics/transfer cost is charged.  Writes optionally complete into
    a write-back cache at a reduced cost.

    Parameters
    ----------
    geometry:
        Physical parameters of the drive.
    write_cache_enabled:
        If true (the default, matching consumer SATA drives), writes are
        acknowledged once they are in the drive's volatile cache.
    """

    #: Fraction of a full rotation charged as settle/electronics overhead.
    _OVERHEAD_NS = 200_000.0  # 0.2 ms controller + command overhead

    def __init__(
        self,
        geometry: DiskGeometry = MAXTOR_7L250S0,
        write_cache_enabled: bool = True,
    ) -> None:
        geometry.validate()
        super().__init__(geometry.capacity_bytes, geometry.sector_bytes)
        self.geometry = geometry
        self.write_cache_enabled = write_cache_enabled
        self._head_offset = 0
        # Track cache: remembers the byte range read ahead by the drive.
        self._cache_start = -1
        self._cache_end = -1

    # ------------------------------------------------------------- mechanics
    def _seek_time_ns(self, from_offset: int, to_offset: int) -> float:
        """Seek time as a function of seek distance.

        Uses the standard square-root seek curve: short seeks are dominated by
        head settling, long seeks by coast time.
        """
        distance = abs(to_offset - from_offset)
        if distance == 0:
            return 0.0
        frac = min(1.0, distance / self.capacity_bytes)
        t2t = self.geometry.track_to_track_seek_ms
        full = self.geometry.full_stroke_seek_ms
        seek_ms = t2t + (full - t2t) * math.sqrt(frac)
        return seek_ms * NS_PER_MS

    def _transfer_rate_bytes_per_ns(self, offset_bytes: int) -> float:
        """Zoned transfer rate: outer tracks (low offsets) are faster."""
        frac = min(1.0, max(0.0, offset_bytes / self.capacity_bytes))
        rate_mb_s = (
            self.geometry.max_transfer_mb_s
            - (self.geometry.max_transfer_mb_s - self.geometry.min_transfer_mb_s) * frac
        )
        return rate_mb_s * 1024 * 1024 / NS_PER_SEC

    def _transfer_time_ns(self, offset_bytes: int, nbytes: int) -> float:
        return nbytes / self._transfer_rate_bytes_per_ns(offset_bytes)

    def _in_track_cache(self, offset_bytes: int, nbytes: int) -> bool:
        return self._cache_start <= offset_bytes and offset_bytes + nbytes <= self._cache_end

    def _refill_track_cache(self, offset_bytes: int, nbytes: int) -> None:
        # The drive reads ahead from the end of the request up to the size of
        # its segment cache; a subsequent sequential read hits this cache.
        self._cache_start = offset_bytes
        self._cache_end = min(
            self.capacity_bytes, offset_bytes + max(nbytes, self.geometry.track_cache_bytes)
        )

    def _invalidate_track_cache(self, offset_bytes: int, nbytes: int) -> None:
        """Drop the cached segment from a written range onward.

        The segment cache holds stale media contents once any part of it is
        overwritten; a read served from it after a write would return old data
        at near-zero cost.  The cache is a single contiguous range, so the
        conservative invalidation keeps only the prefix before the write.
        """
        if self._cache_start < 0:
            return
        write_end = offset_bytes + nbytes
        if write_end <= self._cache_start or offset_bytes >= self._cache_end:
            return  # no overlap
        if offset_bytes <= self._cache_start:
            self._cache_start = -1
            self._cache_end = -1
        else:
            self._cache_end = offset_bytes

    # --------------------------------------------------------------- service
    def read_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        if self._in_track_cache(offset_bytes, nbytes):
            # Served from the drive's segment buffer: interface transfer only.
            # (position + transfer keeps the same left-to-right float sum as
            # the single-expression form, so the decomposition is exact.)
            self.stats.track_cache_hits += 1
            position = self._OVERHEAD_NS / 2.0
            transfer = self._transfer_time_ns(offset_bytes, nbytes) / 2.0
            latency = position + transfer
            if self.component_trace_enabled:
                self.last_components = {"seek": position, "transfer": transfer}
            self._head_offset = offset_bytes + nbytes
            return latency

        seek = self._seek_time_ns(self._head_offset, offset_bytes)
        if seek > 0:
            self.stats.seeks += 1
        rotation = rng.uniform(0.0, self.geometry.rotation_time_ns())
        transfer = self._transfer_time_ns(offset_bytes, nbytes)
        self._head_offset = offset_bytes + nbytes
        self._refill_track_cache(offset_bytes, nbytes)
        position = self._OVERHEAD_NS + seek + rotation
        if self.component_trace_enabled:
            self.last_components = {"seek": position, "transfer": transfer}
        return position + transfer

    def write_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        self._invalidate_track_cache(offset_bytes, nbytes)
        if self.write_cache_enabled:
            # Acknowledge from the drive cache; charge interface transfer plus
            # a small probability of having to destage synchronously.
            latency = self._OVERHEAD_NS + self._transfer_time_ns(offset_bytes, nbytes) / 2.0
            if rng.random() < 0.02:
                seek = self._seek_time_ns(self._head_offset, offset_bytes)
                if seek > 0:
                    self.stats.seeks += 1
                latency += seek
                latency += rng.uniform(0.0, self.geometry.rotation_time_ns())
                self._head_offset = offset_bytes + nbytes
            return latency

        seek = self._seek_time_ns(self._head_offset, offset_bytes)
        if seek > 0:
            self.stats.seeks += 1
        rotation = rng.uniform(0.0, self.geometry.rotation_time_ns())
        transfer = self._transfer_time_ns(offset_bytes, nbytes)
        self._head_offset = offset_bytes + nbytes
        return self._OVERHEAD_NS + seek + rotation + transfer

    def flush_latency_ns(self, rng: random.Random) -> float:
        """Cost of a cache-flush / barrier command (used by journaling FS)."""
        if not self.write_cache_enabled:
            return self._OVERHEAD_NS
        # Destage whatever is pending: approximate with one rotation + a short seek.
        return (
            self._OVERHEAD_NS
            + self.geometry.track_to_track_seek_ms * NS_PER_MS
            + rng.uniform(0.0, self.geometry.rotation_time_ns())
        )

    def reset_state(self) -> None:
        super().reset_state()
        self._head_offset = 0
        self._cache_start = -1
        self._cache_end = -1

    def __repr__(self) -> str:
        gb = self.capacity_bytes / 10 ** 9
        return f"MechanicalDisk({gb:.0f}GB, {self.geometry.rpm}rpm)"


class SolidStateDisk(DeviceModel):
    """A simple *stateless* NAND SSD model.

    Reads have a flat latency; writes are slower and occasionally incur a
    garbage-collection pause.  Large transfers are spread over ``channels``
    independent flash channels.

    This is the legacy ``ssd`` device kind: garbage collection is a per-write
    coin flip, so service time depends on operation *count*, never on device
    occupancy, fragmentation or over-provisioning headroom.  The stateful
    :class:`~repro.storage.flash.FlashTranslationLayer` (``ssd-ftl``) is the
    model that makes SSD benchmarks exhibit the paper's hidden-state
    fragility; this one stays registered so existing cache keys (and cached
    results) remain valid.

    Randomness caveat (``rng_seed``)
    --------------------------------
    By default the jitter and the GC coin draw from the *shared* stack rng
    passed into each call, which means this device's service times depend on
    how many random numbers every other component consumed before it -- a
    CPU-jitter draw in the VFS shifts the GC coin of the next write.  Pass
    ``rng_seed`` to give the device a private, seed-isolated random source:
    service times then depend only on the device's own call sequence.  The
    default stays ``None`` (shared rng) because the legacy ``ssd`` registry
    entry must keep producing bit-identical results for its existing cache
    entries.
    """

    def __init__(
        self,
        capacity_bytes: int = 256 * 10 ** 9,
        read_latency_us: float = 80.0,
        write_latency_us: float = 220.0,
        page_bytes: int = 4096,
        channels: int = 8,
        channel_mb_s: float = 180.0,
        gc_probability: float = 0.002,
        gc_pause_ms: float = 4.0,
        rng_seed: Optional[int] = None,
    ) -> None:
        super().__init__(capacity_bytes, sector_bytes=page_bytes)
        if channels <= 0:
            raise ValueError("channels must be positive")
        if not (0.0 <= gc_probability <= 1.0):
            raise ValueError("gc_probability must be in [0, 1]")
        self.read_latency_ns_base = read_latency_us * 1_000.0
        self.write_latency_ns_base = write_latency_us * 1_000.0
        self.page_bytes = page_bytes
        self.channels = channels
        self.channel_bytes_per_ns = channel_mb_s * 1024 * 1024 / NS_PER_SEC
        self.gc_probability = gc_probability
        self.gc_pause_ns = gc_pause_ms * NS_PER_MS
        self.rng_seed = rng_seed
        self._private_rng = random.Random(rng_seed) if rng_seed is not None else None

    def _rng(self, shared: random.Random) -> random.Random:
        return self._private_rng if self._private_rng is not None else shared

    def _transfer_ns(self, nbytes: int) -> float:
        pages = max(1, math.ceil(nbytes / self.page_bytes))
        parallel_waves = math.ceil(pages / self.channels)
        per_page_transfer = self.page_bytes / self.channel_bytes_per_ns
        return parallel_waves * per_page_transfer

    def read_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        jitter = self._rng(rng).uniform(0.9, 1.15)
        return self.read_latency_ns_base * jitter + self._transfer_ns(nbytes)

    def write_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        rng = self._rng(rng)
        jitter = rng.uniform(0.9, 1.3)
        latency = self.write_latency_ns_base * jitter + self._transfer_ns(nbytes)
        # The coin is flipped unconditionally (as before); adding 0.0 when it
        # misses is float-identical to not adding at all.
        gc_pause = self.gc_pause_ns if rng.random() < self.gc_probability else 0.0
        if self.component_trace_enabled:
            self.last_components = {"transfer": latency, "gc-pause": gc_pause}
        return latency + gc_pause

    def reset_state(self) -> None:
        super().reset_state()
        if self.rng_seed is not None:
            self._private_rng = random.Random(self.rng_seed)

    def __repr__(self) -> str:
        gb = self.capacity_bytes / 10 ** 9
        return f"SolidStateDisk({gb:.0f}GB, {self.channels}ch)"


class RamDisk(DeviceModel):
    """A device limited only by memory bandwidth.

    Useful for nano-benchmarks that want to isolate the software stack (file
    system CPU path, cache management) from any device behaviour.
    """

    def __init__(
        self,
        capacity_bytes: int = 4 * 10 ** 9,
        bandwidth_gb_s: float = 6.0,
        fixed_overhead_ns: float = 300.0,
    ) -> None:
        super().__init__(capacity_bytes)
        if bandwidth_gb_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.bytes_per_ns = bandwidth_gb_s * 10 ** 9 / NS_PER_SEC
        self.fixed_overhead_ns = fixed_overhead_ns

    def read_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        return self.fixed_overhead_ns + nbytes / self.bytes_per_ns

    def write_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        return self.fixed_overhead_ns + nbytes / self.bytes_per_ns

    def __repr__(self) -> str:
        gb = self.capacity_bytes / 10 ** 9
        return f"RamDisk({gb:.0f}GB)"
