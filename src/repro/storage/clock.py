"""Virtual clock used by the whole simulated stack.

All latencies produced by the storage substrate, the file systems and the
workload engine are expressed in nanoseconds of *simulated* time and charged
against a :class:`VirtualClock`.  Using a virtual clock rather than wall-clock
time is what makes the reproduction independent of Python interpreter
overhead (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


class VirtualClock:
    """A monotonically increasing simulated clock with nanosecond resolution.

    The clock only moves when a component explicitly charges time to it via
    :meth:`advance`.  It never reads the host's wall clock.

    Parameters
    ----------
    start_ns:
        Initial timestamp in nanoseconds.  Defaults to ``0``.
    """

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("start_ns must be non-negative")
        self._now_ns = float(start_ns)

    # ------------------------------------------------------------------ reads
    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_ns / NS_PER_US

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ns / NS_PER_MS

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / NS_PER_SEC

    # ---------------------------------------------------------------- updates
    def advance(self, delta_ns: float) -> float:
        """Advance the clock by ``delta_ns`` nanoseconds and return the new time.

        Negative advances are rejected: simulated time is monotonic.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_ns}")
        self._now_ns += delta_ns
        return self._now_ns

    def advance_s(self, delta_s: float) -> float:
        """Advance the clock by ``delta_s`` seconds and return the new time in ns."""
        return self.advance(delta_s * NS_PER_SEC)

    def reset(self, to_ns: float = 0.0) -> None:
        """Reset the clock to ``to_ns`` (used between benchmark repetitions)."""
        if to_ns < 0:
            raise ValueError("cannot reset clock to a negative time")
        self._now_ns = float(to_ns)

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now_ns / NS_PER_SEC:.6f}s)"


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_SEC


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_SEC


def ms_to_ns(ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return ms * NS_PER_MS


def us_to_ns(us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return us * NS_PER_US
