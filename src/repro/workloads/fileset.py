"""Fileset construction.

A *fileset* is the pre-created population of files a workload operates on
(Filebench's term).  A :class:`FilesetSpec` describes the population -- how
many files, how large, how deep a directory tree -- and
:func:`FilesetSpec.materialize` builds it on a simulated stack, optionally
outside measured time (the usual benchmark practice of excluding setup).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.randomdist import FixedValue, SizeDistribution


@dataclass
class FilesetSpec:
    """Description of a file population.

    Attributes
    ----------
    name:
        Used as the directory prefix (``/<name>/...``).
    file_count:
        Number of regular files.
    size_distribution:
        Distribution of file sizes in bytes.
    directories:
        Number of leaf directories the files are spread across.
    depth:
        Directory nesting depth (1 means files live directly in the leaf
        directories under the root of the set).
    prealloc_fraction:
        Fraction of the files whose blocks are pre-allocated at materialize
        time (Filebench's ``prealloc``); the rest are created empty.
    """

    name: str = "fileset"
    file_count: int = 1
    size_distribution: SizeDistribution = field(default_factory=lambda: FixedValue(1024 * 1024))
    directories: int = 1
    depth: int = 1
    prealloc_fraction: float = 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if not self.name or "/" in self.name:
            raise ValueError("fileset name must be a single path component")
        if self.file_count < 0:
            raise ValueError("file_count must be non-negative")
        if self.directories <= 0 or self.depth <= 0:
            raise ValueError("directories and depth must be positive")
        if not (0.0 <= self.prealloc_fraction <= 1.0):
            raise ValueError("prealloc_fraction must be in [0, 1]")

    # ------------------------------------------------------------ structure
    def directory_paths(self) -> List[str]:
        """Absolute paths of every directory in the set (parents first)."""
        paths: List[str] = [f"/{self.name}"]
        for leaf in range(self.directories):
            components = [self.name] + [f"d{leaf}.{level}" for level in range(self.depth)]
            for end in range(2, len(components) + 1):
                path = "/" + "/".join(components[:end])
                if path not in paths:
                    paths.append(path)
        return paths

    def file_paths(self) -> List[str]:
        """Absolute paths of every file in the set."""
        paths = []
        for index in range(self.file_count):
            leaf = index % self.directories
            components = [self.name] + [f"d{leaf}.{level}" for level in range(self.depth)]
            paths.append("/" + "/".join(components) + f"/f{index:06d}")
        return paths

    def total_bytes_expected(self) -> float:
        """Expected total size of the fileset."""
        return self.file_count * self.size_distribution.mean() * self.prealloc_fraction

    # --------------------------------------------------------- materialize
    def materialize(
        self,
        vfs,
        rng: Optional[random.Random] = None,
        charge_time: bool = False,
    ) -> "MaterializedFileset":
        """Create the fileset on a VFS.

        With ``charge_time=False`` (the default) file creation and
        pre-allocation do not advance the virtual clock, mirroring the common
        practice of excluding setup from measurement.
        """
        self.validate()
        rng = rng if rng is not None else random.Random(1234)
        sizes: List[int] = []
        paths = self.file_paths()

        for directory in self.directory_paths():
            if not vfs.fs.exists(directory):
                if charge_time:
                    vfs.mkdir(directory)
                else:
                    vfs.fs.mkdir(directory, vfs.clock.now_ns)

        for index, path in enumerate(paths):
            size = self.size_distribution.sample(rng)
            sizes.append(size)
            if charge_time:
                vfs.create(path)
            else:
                vfs.fs.create(path, vfs.clock.now_ns)
            prealloc = rng.random() < self.prealloc_fraction
            if prealloc and size > 0:
                fd = vfs.open(path) if charge_time else vfs.open_uncharged(path)
                vfs.fallocate(fd, size, charge_time=charge_time)
                if charge_time:
                    vfs.close(fd)
                else:
                    vfs.close_uncharged(fd)

        return MaterializedFileset(spec=self, paths=paths, sizes=sizes)


@dataclass
class MaterializedFileset:
    """A fileset that exists on a stack: concrete paths and sizes."""

    spec: FilesetSpec
    paths: List[str]
    sizes: List[int]

    def __len__(self) -> int:
        return len(self.paths)

    def total_bytes(self) -> int:
        """Total bytes across all files."""
        return sum(self.sizes)

    def path_of(self, index: int) -> str:
        """Path of the ``index``-th file."""
        return self.paths[index]

    def size_of(self, index: int) -> int:
        """Size of the ``index``-th file."""
        return self.sizes[index]


def single_file_fileset(size_bytes: int, name: str = "bigfile") -> FilesetSpec:
    """The paper's case-study population: one pre-allocated file of a given size."""
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    return FilesetSpec(
        name=name,
        file_count=1,
        size_distribution=FixedValue(size_bytes),
        directories=1,
        depth=1,
        prealloc_fraction=1.0,
    )
