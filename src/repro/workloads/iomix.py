"""IOmeter-like raw device workloads (the "I/O dimension").

IOmeter-style benchmarks bypass the file system entirely and characterise the
device: bandwidth and latency as a function of request size, randomness and
read/write mix.  They run directly against a :class:`BlockDevice`, which is
how the paper's "I/O benchmark" dimension is isolated from everything above
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.storage.device import BlockDevice

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class IomixProfile:
    """One access-pattern specification (an IOmeter "access spec").

    Attributes
    ----------
    name:
        Profile name used in reports.
    request_bytes:
        I/O request size.
    read_fraction:
        Fraction of requests that are reads.
    random_fraction:
        Fraction of requests issued at uniformly random offsets; the rest are
        sequential from the previous request.
    span_bytes:
        Size of the device region exercised (0 means the whole device).
    """

    name: str
    request_bytes: int = 4 * KiB
    read_fraction: float = 1.0
    random_fraction: float = 1.0
    span_bytes: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ValueError("read_fraction must be in [0, 1]")
        if not (0.0 <= self.random_fraction <= 1.0):
            raise ValueError("random_fraction must be in [0, 1]")
        if self.span_bytes < 0:
            raise ValueError("span_bytes must be non-negative")


#: The classic IOmeter access specs papers tend to quote.
STANDARD_PROFILES: List[IomixProfile] = [
    IomixProfile(name="4k-random-read", request_bytes=4 * KiB, read_fraction=1.0, random_fraction=1.0),
    IomixProfile(name="4k-random-write", request_bytes=4 * KiB, read_fraction=0.0, random_fraction=1.0),
    IomixProfile(name="64k-sequential-read", request_bytes=64 * KiB, read_fraction=1.0, random_fraction=0.0),
    IomixProfile(name="64k-sequential-write", request_bytes=64 * KiB, read_fraction=0.0, random_fraction=0.0),
    IomixProfile(name="8k-oltp-mix", request_bytes=8 * KiB, read_fraction=0.67, random_fraction=1.0),
]


@dataclass
class IomixResult:
    """Result of one profile run."""

    profile: IomixProfile
    requests: int
    total_bytes: int
    duration_s: float
    iops: float
    bandwidth_mb_s: float
    mean_latency_ms: float
    latencies_ns: List[float]


def run_iomix(
    device: BlockDevice,
    profile: IomixProfile,
    requests: int = 2000,
    seed: int = 11,
) -> IomixResult:
    """Issue ``requests`` I/Os per ``profile`` directly at the block device."""
    profile.validate()
    if requests <= 0:
        raise ValueError("requests must be positive")
    rng = random.Random(seed)
    span = profile.span_bytes or device.capacity_bytes
    span = min(span, device.capacity_bytes)
    slots = max(1, span // profile.request_bytes - 1)

    latencies: List[float] = []
    offset = 0
    total_ns = 0.0
    moved = 0
    for _ in range(requests):
        if rng.random() < profile.random_fraction:
            offset = rng.randrange(slots) * profile.request_bytes
        else:
            offset = (offset + profile.request_bytes) % (slots * profile.request_bytes)
        if rng.random() < profile.read_fraction:
            latency = device.read(offset, profile.request_bytes, rng)
        else:
            latency = device.write(offset, profile.request_bytes, rng)
        latencies.append(latency)
        total_ns += latency
        moved += profile.request_bytes

    duration_s = total_ns / 1e9
    return IomixResult(
        profile=profile,
        requests=requests,
        total_bytes=moved,
        duration_s=duration_s,
        iops=requests / duration_s if duration_s > 0 else 0.0,
        bandwidth_mb_s=(moved / MiB) / duration_s if duration_s > 0 else 0.0,
        mean_latency_ms=(total_ns / requests) / 1e6,
        latencies_ns=latencies,
    )
