"""A PostMark-like benchmark.

PostMark (Katcher, 1997) is, per the paper's survey, the single most used
standard benchmark in file system papers (30 uses in 1999-2007, 17 in
2009-2010) despite not isolating any dimension.  This module reimplements its
transaction model: an initial pool of small files, then a sequence of
transactions, each either create/delete or read/append, followed by deletion
of the remaining pool.

The headline number PostMark reports is "transactions per second" -- a single
number, which is precisely the reporting style the paper criticises.  The
:class:`PostmarkResult` therefore also carries the per-phase latency data so
the core reporting machinery can show the full distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fs.stack import StorageStack
from repro.workloads.fileset import FilesetSpec
from repro.workloads.randomdist import UniformSizes
from repro.workloads.spec import OpRecord, OpType

KiB = 1024


@dataclass
class PostmarkConfig:
    """Parameters mirroring PostMark's configuration file."""

    initial_files: int = 500
    transactions: int = 2000
    min_size: int = 512
    max_size: int = 16 * KiB
    read_bias: float = 0.5  # fraction of read/append transactions that read
    create_bias: float = 0.5  # fraction of create/delete transactions that create
    subdirectories: int = 10
    iosize: int = 4 * KiB
    seed: int = 42

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.initial_files <= 0 or self.transactions < 0:
            raise ValueError("initial_files must be positive and transactions non-negative")
        if not (0 < self.min_size <= self.max_size):
            raise ValueError("require 0 < min_size <= max_size")
        if not (0.0 <= self.read_bias <= 1.0 and 0.0 <= self.create_bias <= 1.0):
            raise ValueError("biases must be in [0, 1]")
        if self.subdirectories <= 0 or self.iosize <= 0:
            raise ValueError("subdirectories and iosize must be positive")


@dataclass
class PostmarkResult:
    """Outcome of a PostMark run (all times in simulated seconds)."""

    config: PostmarkConfig
    duration_s: float
    transactions_per_second: float
    ops: int
    created: int
    deleted: int
    bytes_read: int
    bytes_written: int
    op_latencies_ns: Dict[str, List[float]] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"PostMark: {self.config.transactions} transactions in {self.duration_s:.2f}s "
            f"simulated ({self.transactions_per_second:.0f} tps); created {self.created}, "
            f"deleted {self.deleted}, read {self.bytes_read // KiB} KiB, "
            f"wrote {self.bytes_written // KiB} KiB"
        )


def run_postmark(
    stack: StorageStack,
    config: Optional[PostmarkConfig] = None,
    on_op=None,
) -> PostmarkResult:
    """Run the PostMark transaction model against a stack."""
    config = config or PostmarkConfig()
    config.validate()
    rng = random.Random(config.seed)
    vfs = stack.vfs

    fileset_spec = FilesetSpec(
        name="postmark",
        file_count=config.initial_files,
        size_distribution=UniformSizes(config.min_size, config.max_size),
        directories=config.subdirectories,
        prealloc_fraction=1.0,
    )
    fileset = fileset_spec.materialize(vfs, rng=rng, charge_time=False)

    latencies: Dict[str, List[float]] = {"create": [], "delete": [], "read": [], "append": []}
    created = deleted = 0
    bytes_read = bytes_written = 0
    serial = 0
    start_ns = stack.clock.now_ns

    def record(kind: str, latency_ns: float, moved: int = 0) -> None:
        latencies[kind].append(latency_ns)
        if on_op is not None:
            on_op(
                OpRecord(
                    op=OpType(kind),
                    latency_ns=latency_ns,
                    end_time_ns=stack.clock.now_ns,
                    thread=0,
                    bytes_moved=moved,
                )
            )

    for _ in range(config.transactions):
        if rng.random() < 0.5:
            # Create/delete transaction.
            if rng.random() < config.create_bias or not fileset.paths:
                path = f"/postmark/txn{serial:08d}"
                serial += 1
                latency = vfs.create(path)
                size = rng.randint(config.min_size, config.max_size)
                fd = vfs.open_uncharged(path)
                latency += vfs.write(fd, size, offset=0)
                vfs.close_uncharged(fd)
                fileset.paths.append(path)
                fileset.sizes.append(size)
                created += 1
                bytes_written += size
                record("create", latency, size)
            else:
                index = rng.randrange(len(fileset.paths))
                latency = vfs.unlink(fileset.paths[index])
                fileset.paths[index] = fileset.paths[-1]
                fileset.sizes[index] = fileset.sizes[-1]
                fileset.paths.pop()
                fileset.sizes.pop()
                deleted += 1
                record("delete", latency)
        else:
            # Read/append transaction.
            if not fileset.paths:
                continue
            index = rng.randrange(len(fileset.paths))
            path = fileset.paths[index]
            size = max(config.iosize, fileset.sizes[index])
            fd = vfs.open_uncharged(path)
            if rng.random() < config.read_bias:
                latency = 0.0
                offset = 0
                while offset < size:
                    chunk = min(config.iosize, size - offset)
                    latency += vfs.read(fd, chunk, offset=offset)
                    offset += chunk
                bytes_read += size
                record("read", latency, size)
            else:
                append_size = rng.randint(config.min_size, config.max_size)
                latency = vfs.write(fd, append_size, offset=size)
                fileset.sizes[index] = size + append_size
                bytes_written += append_size
                record("append", latency, append_size)
            vfs.close_uncharged(fd)

    # Final phase: delete everything left.
    for path in list(fileset.paths):
        vfs.unlink(path)
        deleted += 1
    fileset.paths.clear()
    fileset.sizes.clear()

    duration_s = (stack.clock.now_ns - start_ns) / 1e9
    tps = config.transactions / duration_s if duration_s > 0 else 0.0
    total_ops = sum(len(v) for v in latencies.values())
    return PostmarkResult(
        config=config,
        duration_s=duration_s,
        transactions_per_second=tps,
        ops=total_ops,
        created=created,
        deleted=deleted,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        op_latencies_ns=latencies,
    )
