"""Trace capture and replay.

The paper's survey notes that trace-based evaluation is popular (35 uses in
2009-2010) but that almost none of the traces are publicly available, which
makes the results irreproducible.  This module provides the two halves a
released system needs:

* :class:`TraceRecorder` -- capture the operation stream of any workload run
  into a plain-text, shareable format;
* :class:`TraceReplayer` -- replay a trace against any stack, either
  "as fast as possible" or honouring the recorded inter-arrival gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, TextIO, Union

from repro.fs.stack import StorageStack
from repro.workloads.spec import OpRecord, OpType

#: Columns of the on-disk trace format, in order.
TRACE_COLUMNS = ("timestamp_ns", "op", "path", "offset", "nbytes")


@dataclass(frozen=True)
class TraceRecord:
    """One replayable trace entry."""

    timestamp_ns: float
    op: str
    path: str
    offset: int = 0
    nbytes: int = 0

    def to_line(self) -> str:
        """Serialize to one whitespace-separated line."""
        return f"{self.timestamp_ns:.0f} {self.op} {self.path} {self.offset} {self.nbytes}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse one line produced by :meth:`to_line`."""
        parts = line.split()
        if len(parts) != 5:
            raise ValueError(f"malformed trace line: {line!r}")
        timestamp, op, path, offset, nbytes = parts
        return cls(
            timestamp_ns=float(timestamp),
            op=op,
            path=path,
            offset=int(offset),
            nbytes=int(nbytes),
        )


class TraceRecorder:
    """Collects trace records; usable as a workload-engine ``on_op`` callback.

    The engine's :class:`~repro.workloads.spec.OpRecord` does not carry the
    path, so records captured that way use the synthetic path ``"<fileset>"``;
    for full-fidelity traces use :meth:`record` directly from custom drivers.
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def __call__(self, op_record: OpRecord) -> None:
        self.records.append(
            TraceRecord(
                timestamp_ns=op_record.end_time_ns,
                op=op_record.op.value,
                path="<fileset>",
                offset=0,
                nbytes=op_record.bytes_moved,
            )
        )

    def record(self, timestamp_ns: float, op: str, path: str, offset: int = 0, nbytes: int = 0) -> None:
        """Append one explicit record."""
        self.records.append(TraceRecord(timestamp_ns, op, path, offset, nbytes))

    def __len__(self) -> int:
        return len(self.records)


def save_trace(records: Iterable[TraceRecord], destination: Union[str, TextIO]) -> int:
    """Write records to a path or file object; returns the number written."""
    owns = isinstance(destination, str)
    handle: TextIO = open(destination, "w") if owns else destination
    try:
        handle.write("# " + " ".join(TRACE_COLUMNS) + "\n")
        count = 0
        for record in records:
            handle.write(record.to_line() + "\n")
            count += 1
        return count
    finally:
        if owns:
            handle.close()


def load_trace(source: Union[str, TextIO]) -> List[TraceRecord]:
    """Read records from a path or file object."""
    owns = isinstance(source, str)
    handle: TextIO = open(source, "r") if owns else source
    try:
        records = []
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            records.append(TraceRecord.from_line(line))
        return records
    finally:
        if owns:
            handle.close()


class TraceReplayer:
    """Replays a trace against a stack.

    Parameters
    ----------
    stack:
        The simulated stack to replay against.
    honour_timing:
        When true, idle time is inserted so operations start no earlier than
        their recorded (relative) timestamps; when false the trace is replayed
        back-to-back ("as fast as possible").
    create_missing:
        Create (and grow) files referenced by the trace that do not exist yet.
    """

    def __init__(
        self,
        stack: StorageStack,
        honour_timing: bool = False,
        create_missing: bool = True,
    ) -> None:
        self.stack = stack
        self.honour_timing = honour_timing
        self.create_missing = create_missing
        self.latencies_ns: List[float] = []
        self._fds = {}

    def _ensure_file(self, path: str, min_size: int) -> Optional[int]:
        vfs = self.stack.vfs
        if path == "<fileset>":
            return None
        if not vfs.fs.exists(path):
            if not self.create_missing:
                raise FileNotFoundError(path)
            self._mkdirs_for(path)
            vfs.fs.create(path, vfs.clock.now_ns)
        fd = self._fds.get(path)
        if fd is None:
            fd = vfs.open_uncharged(path)
            self._fds[path] = fd
        inode = vfs.open_file(fd).inode
        if min_size and inode.size_bytes < min_size:
            vfs.fallocate(fd, min_size, charge_time=False)
        return fd

    def _mkdirs_for(self, path: str) -> None:
        parent = "/".join(path.split("/")[:-1])
        if parent:
            self.stack.vfs.mkdirs_uncharged(parent)

    def replay(self, records: Iterable[TraceRecord]) -> List[float]:
        """Replay the records; returns per-operation latencies in ns."""
        vfs = self.stack.vfs
        self.latencies_ns = []
        base_trace_ns: Optional[float] = None
        base_clock_ns = self.stack.clock.now_ns

        for record in records:
            if self.honour_timing:
                if base_trace_ns is None:
                    base_trace_ns = record.timestamp_ns
                target = base_clock_ns + (record.timestamp_ns - base_trace_ns)
                gap = target - self.stack.clock.now_ns
                if gap > 0:
                    vfs.idle(gap)

            op = record.op
            if op in (OpType.READ.value, OpType.READ_WHOLE_FILE.value):
                fd = self._ensure_file(record.path, record.offset + max(record.nbytes, 1))
                latency = vfs.read(fd, max(record.nbytes, 1), offset=record.offset) if fd is not None else 0.0
            elif op in (OpType.WRITE.value, OpType.APPEND.value, OpType.WRITE_WHOLE_FILE.value):
                fd = self._ensure_file(record.path, record.offset)
                latency = vfs.write(fd, max(record.nbytes, 1), offset=record.offset) if fd is not None else 0.0
            elif op == OpType.CREATE.value:
                if not vfs.fs.exists(record.path):
                    self._mkdirs_for(record.path)
                    latency = vfs.create(record.path)
                else:
                    latency = 0.0
            elif op == OpType.DELETE.value:
                latency = vfs.unlink(record.path) if vfs.fs.exists(record.path) else 0.0
                self._fds.pop(record.path, None)
            elif op == OpType.STAT.value:
                latency = vfs.stat(record.path) if vfs.fs.exists(record.path) else 0.0
            elif op == OpType.FSYNC.value:
                fd = self._ensure_file(record.path, 0)
                latency = vfs.fsync(fd) if fd is not None else 0.0
            elif op == OpType.MKDIR.value:
                latency = vfs.mkdir(record.path) if not vfs.fs.exists(record.path) else 0.0
            else:
                # Unknown ops are skipped rather than aborting a long replay.
                latency = 0.0
            self.latencies_ns.append(latency)
        return self.latencies_ns
