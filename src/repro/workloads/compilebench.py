"""A compile-like workload (the "Linux kernel build" anti-pattern).

The paper singles out kernel builds as a widely used but largely meaningless
file system benchmark: on modern machines the build is CPU bound, so it mostly
measures the compiler.  This generator reproduces that structure -- read many
small source files, burn CPU "compiling" them, write small object files -- so
that the framework can *demonstrate* the anti-pattern: sweeping
``cpu_think_us`` shows how quickly the file system disappears from the
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workloads.fileset import FilesetSpec
from repro.workloads.randomdist import LogNormalSizes
from repro.workloads.spec import (
    FileSelector,
    FlowOp,
    OffsetMode,
    OpType,
    WorkloadSpec,
)

KiB = 1024


@dataclass
class CompileBenchConfig:
    """Parameters of the compile-like workload."""

    source_files: int = 2000
    median_source_bytes: int = 8 * KiB
    object_write_bytes: int = 12 * KiB
    cpu_think_us: float = 2000.0  # per-file "compilation" time
    directories: int = 40
    threads: int = 4

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.source_files <= 0:
            raise ValueError("source_files must be positive")
        if self.median_source_bytes <= 0 or self.object_write_bytes <= 0:
            raise ValueError("file sizes must be positive")
        if self.cpu_think_us < 0:
            raise ValueError("cpu_think_us must be non-negative")
        if self.directories <= 0 or self.threads <= 0:
            raise ValueError("directories and threads must be positive")


def compile_workload(config: Optional[CompileBenchConfig] = None) -> WorkloadSpec:
    """Build the compile-like workload spec."""
    config = config or CompileBenchConfig()
    config.validate()
    return WorkloadSpec(
        name="compile",
        description=(
            "Kernel-build-like workload: read small sources, burn "
            f"{config.cpu_think_us:.0f} us of CPU per file, write small objects"
        ),
        flowops=[
            FlowOp(op=OpType.STAT, file_selector=FileSelector.ROUND_ROBIN),
            FlowOp(
                op=OpType.READ_WHOLE_FILE,
                iosize=64 * KiB,
                file_selector=FileSelector.ROUND_ROBIN,
                think_ns=config.cpu_think_us * 1_000.0,
            ),
            FlowOp(op=OpType.CREATE),
            FlowOp(
                op=OpType.WRITE,
                iosize=config.object_write_bytes,
                offset_mode=OffsetMode.SEQUENTIAL,
                file_selector=FileSelector.RANDOM,
            ),
        ],
        fileset=FilesetSpec(
            name="srctree",
            file_count=config.source_files,
            size_distribution=LogNormalSizes(
                median=config.median_source_bytes, sigma=1.0, low=256, high=512 * KiB
            ),
            directories=config.directories,
            depth=2,
            prealloc_fraction=1.0,
        ),
        threads=config.threads,
        op_overhead_ns=20_000.0,
        dimensions=["metadata", "caching"],
    )
