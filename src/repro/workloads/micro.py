"""Micro (nano) workloads, each isolating one file system dimension.

The paper argues that "a file system benchmark should be a suite of
nano-benchmarks where each individual test measures a particular aspect of
file system performance and measures it well".  These constructors build the
individual nano-workloads; :mod:`repro.core.suite` composes them into the
suite the paper asks for.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.fileset import FilesetSpec, single_file_fileset
from repro.workloads.randomdist import FixedValue, UniformSizes
from repro.workloads.spec import (
    FileSelector,
    FlowOp,
    OffsetMode,
    OpType,
    WorkloadSpec,
)

KiB = 1024
MiB = 1024 * 1024


def random_read_workload(
    file_size_bytes: int,
    iosize: int = 8 * KiB,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
    name: Optional[str] = None,
) -> WorkloadSpec:
    """The paper's case-study workload: uniform random reads of one file.

    Whether this measures memory, cache-warm-up behaviour or the disk depends
    entirely on ``file_size_bytes`` relative to the page cache -- which is the
    point of the case study.
    """
    return WorkloadSpec(
        name=name or f"random-read-{file_size_bytes // MiB}m",
        description=(
            "Single-file uniform random reads "
            f"({iosize} B I/Os over a {file_size_bytes} B file)"
        ),
        flowops=[
            FlowOp(
                op=OpType.READ,
                iosize=iosize,
                offset_mode=OffsetMode.RANDOM,
                file_selector=FileSelector.SAME,
            )
        ],
        fileset=single_file_fileset(file_size_bytes),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["caching", "io"],
    )


def sequential_read_workload(
    file_size_bytes: int,
    iosize: int = 128 * KiB,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Whole-file sequential reads: the on-disk layout / bandwidth dimension."""
    return WorkloadSpec(
        name=f"sequential-read-{file_size_bytes // MiB}m",
        description="Single-file sequential reads",
        flowops=[
            FlowOp(
                op=OpType.READ,
                iosize=iosize,
                offset_mode=OffsetMode.SEQUENTIAL,
                file_selector=FileSelector.SAME,
            )
        ],
        fileset=single_file_fileset(file_size_bytes),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["ondisk", "io"],
    )


def random_write_workload(
    file_size_bytes: int,
    iosize: int = 8 * KiB,
    threads: int = 1,
    fsync_each: bool = False,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Random overwrites of an existing file (dirty-page and writeback path)."""
    return WorkloadSpec(
        name=f"random-write-{file_size_bytes // MiB}m",
        description="Single-file uniform random writes",
        flowops=[
            FlowOp(
                op=OpType.WRITE,
                iosize=iosize,
                offset_mode=OffsetMode.RANDOM,
                file_selector=FileSelector.SAME,
                fsync_after=fsync_each,
            )
        ],
        fileset=single_file_fileset(file_size_bytes),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["caching", "io"],
    )


def sequential_write_workload(
    file_size_bytes: int,
    iosize: int = 128 * KiB,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Sequential overwrite of a file (allocator and writeback bandwidth)."""
    return WorkloadSpec(
        name=f"sequential-write-{file_size_bytes // MiB}m",
        description="Single-file sequential writes",
        flowops=[
            FlowOp(
                op=OpType.WRITE,
                iosize=iosize,
                offset_mode=OffsetMode.SEQUENTIAL,
                file_selector=FileSelector.SAME,
            )
        ],
        fileset=single_file_fileset(file_size_bytes),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["ondisk", "io"],
    )


def append_workload(
    iosize: int = 8 * KiB,
    fsync_each: bool = True,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Log-style appends with optional per-append fsync (journals love this)."""
    return WorkloadSpec(
        name="append-fsync" if fsync_each else "append",
        description="Append to a log file" + (" with fsync after each append" if fsync_each else ""),
        flowops=[
            FlowOp(
                op=OpType.APPEND,
                iosize=iosize,
                file_selector=FileSelector.SAME,
                fsync_after=fsync_each,
            )
        ],
        fileset=single_file_fileset(1 * MiB, name="logset"),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata", "io"],
    )


def create_delete_workload(
    file_count: int = 1000,
    file_size_bytes: int = 4 * KiB,
    directories: int = 10,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Pure meta-data churn: create files, then delete files, repeatedly."""
    return WorkloadSpec(
        name="create-delete",
        description="Create/delete churn across a directory tree",
        flowops=[
            FlowOp(op=OpType.CREATE),
            FlowOp(op=OpType.CREATE),
            FlowOp(op=OpType.DELETE),
        ],
        fileset=FilesetSpec(
            name="churnset",
            file_count=file_count,
            size_distribution=FixedValue(file_size_bytes),
            directories=directories,
            prealloc_fraction=1.0,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata"],
    )


def stat_workload(
    file_count: int = 10_000,
    directories: int = 100,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Path resolution and inode lookup (cold vs warm metadata cache)."""
    return WorkloadSpec(
        name="stat-scan",
        description="Random stat() calls over a large population",
        flowops=[
            FlowOp(op=OpType.STAT, file_selector=FileSelector.RANDOM),
        ],
        fileset=FilesetSpec(
            name="statset",
            file_count=file_count,
            size_distribution=FixedValue(4 * KiB),
            directories=directories,
            prealloc_fraction=0.0,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata", "caching"],
    )


def metadata_mix_workload(
    file_count: int = 5000,
    directories: int = 50,
    threads: int = 1,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """A mixed metadata workload: create, stat, open/close, delete."""
    return WorkloadSpec(
        name="metadata-mix",
        description="Mixed metadata operations (create/stat/open/close/delete)",
        flowops=[
            FlowOp(op=OpType.CREATE),
            FlowOp(op=OpType.STAT, file_selector=FileSelector.RANDOM, repeat=2),
            FlowOp(op=OpType.OPEN, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.CLOSE, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.DELETE),
        ],
        fileset=FilesetSpec(
            name="metamix",
            file_count=file_count,
            size_distribution=UniformSizes(1 * KiB, 64 * KiB, granularity=KiB),
            directories=directories,
            prealloc_fraction=0.5,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata"],
    )
