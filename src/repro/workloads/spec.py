"""Workload description language and execution engine.

A :class:`WorkloadSpec` is a small, declarative description of a workload in
the spirit of Filebench's *flowops*: a named list of operations, each with an
I/O size, an offset mode and a file-selection policy, executed by one or more
threads against a fileset.  The :class:`WorkloadEngine` executes a spec
against a simulated stack and reports every operation to a callback, which is
how the benchmarking core collects latencies without the workload layer
knowing anything about statistics.

The engine runs entirely in simulated time: the stop condition is expressed in
virtual seconds (or an operation count), so a "20 minute" run takes however
long the simulation takes, not 20 minutes of wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.fs.stack import StorageStack
from repro.workloads.fileset import FilesetSpec, MaterializedFileset
from repro.workloads.randomdist import Selector, UniformSelector


class OpType(str, Enum):
    """Operation types supported by the engine."""

    READ = "read"
    WRITE = "write"
    APPEND = "append"
    READ_WHOLE_FILE = "read_whole_file"
    WRITE_WHOLE_FILE = "write_whole_file"
    CREATE = "create"
    DELETE = "delete"
    STAT = "stat"
    OPEN = "open"
    CLOSE = "close"
    FSYNC = "fsync"
    MKDIR = "mkdir"
    DELAY = "delay"


class OffsetMode(str, Enum):
    """How the offset for a data operation is chosen."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


class FileSelector(str, Enum):
    """How the target file for an operation is chosen."""

    ROUND_ROBIN = "round_robin"
    RANDOM = "random"
    SAME = "same"


@dataclass(frozen=True)
class FlowOp:
    """One step of a workload's inner loop.

    Attributes
    ----------
    op:
        Operation type.
    iosize:
        Bytes per data operation.
    offset_mode:
        Sequential or uniformly random offsets (aligned to ``iosize``).
    file_selector:
        How the target file is picked from the fileset.
    repeat:
        How many times this flowop runs per loop iteration.
    think_ns:
        Simulated application think time charged after each execution (not
        recorded as operation latency).
    fsync_after:
        Whether to fsync the file after a write-type operation.
    """

    op: OpType
    iosize: int = 8192
    offset_mode: OffsetMode = OffsetMode.SEQUENTIAL
    file_selector: FileSelector = FileSelector.SAME
    repeat: int = 1
    think_ns: float = 0.0
    fsync_after: bool = False

    def __post_init__(self) -> None:
        if self.iosize <= 0:
            raise ValueError("iosize must be positive")
        if self.repeat <= 0:
            raise ValueError("repeat must be positive")
        if self.think_ns < 0:
            raise ValueError("think_ns must be non-negative")


@dataclass
class WorkloadSpec:
    """A complete workload description.

    Attributes
    ----------
    name:
        Workload name used in reports.
    flowops:
        The operation loop executed by every thread.
    fileset:
        The file population the workload runs against.
    threads:
        Number of worker threads (modelled, not real threads).
    op_overhead_ns:
        Per-operation benchmark-engine overhead (event scheduling, workload
        bookkeeping).  Filebench-style engines spend roughly 90--100 us per
        operation, which is what makes the paper's "memory-bound" Ext2
        plateau sit near 10^4 ops/s rather than at raw page-cache speed.
    dimensions:
        Names of the file system dimensions this workload primarily
        exercises (see :class:`repro.core.dimensions.Dimension`); stored as
        strings so the workload layer stays independent of the core package.
    description:
        Human-readable description for reports.
    """

    name: str
    flowops: List[FlowOp]
    fileset: FilesetSpec
    threads: int = 1
    op_overhead_ns: float = 98_000.0
    dimensions: List[str] = field(default_factory=list)
    description: str = ""

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent specs."""
        if not self.name:
            raise ValueError("workload must have a name")
        if not self.flowops:
            raise ValueError("workload must have at least one flowop")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.op_overhead_ns < 0:
            raise ValueError("op_overhead_ns must be non-negative")
        self.fileset.validate()


@dataclass
class OpRecord:
    """One executed operation, as reported to the engine callback."""

    op: OpType
    latency_ns: float
    end_time_ns: float
    thread: int
    bytes_moved: int = 0


OnOpCallback = Callable[[OpRecord], None]


class _ThreadState:
    """Per-worker bookkeeping."""

    __slots__ = ("index", "fds", "next_file", "sequential_offsets", "created_serial")

    def __init__(self, index: int) -> None:
        self.index = index
        self.fds: Dict[int, int] = {}
        self.next_file = index  # stagger round-robin starting points
        self.sequential_offsets: Dict[int, int] = {}
        self.created_serial = 0


class WorkloadEngine:
    """Executes a :class:`WorkloadSpec` against a :class:`StorageStack`.

    Parameters
    ----------
    stack:
        The simulated stack to run against.
    spec:
        The workload description.
    seed:
        Seed for the engine's random source (file and offset selection).
        Independent from the stack's seed so that workload randomness and
        device randomness can be varied separately.
    on_op:
        Callback invoked for every executed operation.
    """

    def __init__(
        self,
        stack: StorageStack,
        spec: WorkloadSpec,
        seed: int = 7,
        on_op: Optional[OnOpCallback] = None,
    ) -> None:
        spec.validate()
        self.stack = stack
        self.spec = spec
        self.rng = random.Random(seed)
        self.on_op = on_op
        self.fileset: Optional[MaterializedFileset] = None
        self._threads = [_ThreadState(i) for i in range(spec.threads)]
        self._selector: Selector = UniformSelector()
        self.ops_executed = 0
        self._setup_done = False
        self._step_cycle = None

    # ------------------------------------------------------------------ setup
    def setup(self) -> MaterializedFileset:
        """Materialize the fileset (outside measured time) and open the files."""
        if self._setup_done and self.fileset is not None:
            return self.fileset
        self.fileset = self.spec.fileset.materialize(self.stack.vfs, rng=self.rng, charge_time=False)
        self._setup_done = True
        return self.fileset

    def _fd_for(self, thread: _ThreadState, file_index: int) -> int:
        fd = thread.fds.get(file_index)
        if fd is None:
            path = self.fileset.path_of(file_index)
            fd = self.stack.vfs.open_uncharged(path)
            thread.fds[file_index] = fd
        return fd

    def _pick_file(self, thread: _ThreadState, flowop: FlowOp) -> int:
        count = len(self.fileset)
        if count == 0:
            raise RuntimeError("workload has an empty fileset")
        if flowop.file_selector is FileSelector.SAME:
            return thread.index % count
        if flowop.file_selector is FileSelector.ROUND_ROBIN:
            index = thread.next_file % count
            thread.next_file += self.spec.threads
            return index
        return self._selector.pick(count, self.rng)

    def _pick_offset(self, thread: _ThreadState, flowop: FlowOp, file_index: int) -> int:
        size = max(self.fileset.size_of(file_index), flowop.iosize)
        if flowop.offset_mode is OffsetMode.RANDOM:
            slots = max(1, size // flowop.iosize)
            return self.rng.randrange(slots) * flowop.iosize
        offset = thread.sequential_offsets.get(file_index, 0)
        if offset + flowop.iosize > size:
            offset = 0
        thread.sequential_offsets[file_index] = offset + flowop.iosize
        return offset

    # -------------------------------------------------------------- execution
    def run(
        self,
        duration_s: Optional[float] = None,
        max_ops: Optional[int] = None,
    ) -> int:
        """Run the workload until a simulated duration or an op count is reached.

        Returns the number of operations executed.  At least one of
        ``duration_s`` / ``max_ops`` must be given.
        """
        if duration_s is None and max_ops is None:
            raise ValueError("provide duration_s, max_ops, or both")
        if not self._setup_done:
            self.setup()

        clock = self.stack.clock
        deadline_ns = clock.now_ns + duration_s * 1e9 if duration_s is not None else None
        executed = 0
        ops_limit = max_ops if max_ops is not None else None

        while True:
            for flowop in self.spec.flowops:
                for _ in range(flowop.repeat):
                    for thread in self._threads:
                        self._execute_one(thread, flowop)
                        executed += 1
                        if ops_limit is not None and executed >= ops_limit:
                            self.ops_executed += executed
                            return executed
                    if deadline_ns is not None and clock.now_ns >= deadline_ns:
                        self.ops_executed += executed
                        return executed
            if deadline_ns is None and ops_limit is None:  # pragma: no cover - guarded above
                break
        return executed

    def _flowop_cycle(self):
        """The endless (thread, flowop) dispatch sequence of :meth:`run`."""
        while True:
            for flowop in self.spec.flowops:
                for _ in range(flowop.repeat):
                    for thread in self._threads:
                        yield thread, flowop

    def step(self) -> None:
        """Execute exactly one operation, advancing the engine's flowop cycle.

        Single-op stepping is what lets the virtual-time event loop
        (:mod:`repro.core.concurrency`) interleave several engines on one
        stack: each call runs the next ``(thread, flowop)`` pair in exactly
        the order :meth:`run` would, so a stepped engine and a running
        engine visit identical operation sequences.  An engine belongs to
        one driver: do not mix :meth:`step` and :meth:`run` on the same
        instance (each keeps its own position in the flowop cycle).
        """
        if not self._setup_done:
            self.setup()
        if self._step_cycle is None:
            self._step_cycle = self._flowop_cycle()
        thread, flowop = next(self._step_cycle)
        self._execute_one(thread, flowop)
        self.ops_executed += 1

    def _execute_one(self, thread: _ThreadState, flowop: FlowOp) -> None:
        vfs = self.stack.vfs
        op = flowop.op
        bytes_moved = 0

        # Open the tracing span for this operation: every latency component
        # charged below (CPU, queue wait, device service, flushes, GC) is
        # attributed to this op type until the span closes.  Purely
        # observational -- the latency math is identical with tracer=None.
        tracer = vfs.tracer
        if tracer is not None:
            tracer.begin_op(op.value)

        if op is OpType.DELAY:
            vfs.idle(flowop.think_ns if flowop.think_ns else 1_000_000.0)
            latency = 0.0
        elif op is OpType.READ:
            file_index = self._pick_file(thread, flowop)
            fd = self._fd_for(thread, file_index)
            offset = self._pick_offset(thread, flowop, file_index)
            latency = vfs.read(fd, flowop.iosize, offset=offset)
            bytes_moved = flowop.iosize
        elif op is OpType.WRITE:
            file_index = self._pick_file(thread, flowop)
            fd = self._fd_for(thread, file_index)
            offset = self._pick_offset(thread, flowop, file_index)
            latency = vfs.write(fd, flowop.iosize, offset=offset)
            bytes_moved = flowop.iosize
            if flowop.fsync_after:
                latency += vfs.fsync(fd)
        elif op is OpType.APPEND:
            file_index = self._pick_file(thread, flowop)
            fd = self._fd_for(thread, file_index)
            inode = vfs.open_file(fd).inode
            latency = vfs.write(fd, flowop.iosize, offset=inode.size_bytes)
            bytes_moved = flowop.iosize
            if flowop.fsync_after:
                latency += vfs.fsync(fd)
        elif op is OpType.READ_WHOLE_FILE:
            file_index = self._pick_file(thread, flowop)
            fd = self._fd_for(thread, file_index)
            size = max(1, self.fileset.size_of(file_index))
            latency = 0.0
            offset = 0
            while offset < size:
                chunk = min(flowop.iosize, size - offset)
                latency += vfs.read(fd, chunk, offset=offset)
                offset += chunk
            bytes_moved = size
        elif op is OpType.WRITE_WHOLE_FILE:
            file_index = self._pick_file(thread, flowop)
            fd = self._fd_for(thread, file_index)
            size = max(flowop.iosize, self.fileset.size_of(file_index))
            latency = 0.0
            offset = 0
            while offset < size:
                chunk = min(flowop.iosize, size - offset)
                latency += vfs.write(fd, chunk, offset=offset)
                offset += chunk
            bytes_moved = size
            if flowop.fsync_after:
                latency += vfs.fsync(fd)
        elif op is OpType.CREATE:
            path = self._new_path(thread)
            latency = vfs.create(path)
            self.fileset.paths.append(path)
            self.fileset.sizes.append(0)
        elif op is OpType.DELETE:
            latency = self._delete_one(thread)
        elif op is OpType.STAT:
            file_index = self._pick_file(thread, flowop)
            latency = vfs.stat(self.fileset.path_of(file_index))
        elif op is OpType.OPEN:
            file_index = self._pick_file(thread, flowop)
            before = self.stack.clock.now_ns
            fd = vfs.open(self.fileset.path_of(file_index))
            latency = self.stack.clock.now_ns - before
            old_fd = thread.fds.get(file_index)
            if old_fd is not None:
                vfs.close_uncharged(old_fd)
            thread.fds[file_index] = fd
        elif op is OpType.CLOSE:
            file_index = self._pick_file(thread, flowop)
            fd = thread.fds.pop(file_index, None)
            latency = vfs.close(fd) if fd is not None else 0.0
        elif op is OpType.FSYNC:
            file_index = self._pick_file(thread, flowop)
            fd = self._fd_for(thread, file_index)
            latency = vfs.fsync(fd)
        elif op is OpType.MKDIR:
            path = f"/{self.spec.fileset.name}/m{thread.index}.{thread.created_serial}"
            thread.created_serial += 1
            latency = vfs.mkdir(path)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported op type: {op}")

        # Close the span before think time and engine overhead: neither is
        # part of the op's measured latency, so neither may be attributed.
        if tracer is not None:
            tracer.end_op(latency)

        if flowop.think_ns and op is not OpType.DELAY:
            vfs.idle(flowop.think_ns)
        if self.spec.op_overhead_ns:
            # Benchmark-engine bookkeeping is CPU work, so it scales with the
            # (per-repetition perturbed) CPU speed of the simulated machine.
            vfs.idle(self.spec.op_overhead_ns * vfs.cpu_speed_factor)

        if self.on_op is not None:
            self.on_op(
                OpRecord(
                    op=op,
                    latency_ns=latency,
                    end_time_ns=self.stack.clock.now_ns,
                    thread=thread.index,
                    bytes_moved=bytes_moved,
                )
            )

    # --------------------------------------------------------------- helpers
    def _new_path(self, thread: _ThreadState) -> str:
        path = f"/{self.spec.fileset.name}/new.t{thread.index}.{thread.created_serial:08d}"
        thread.created_serial += 1
        while self.stack.vfs.fs.exists(path):
            path = f"/{self.spec.fileset.name}/new.t{thread.index}.{thread.created_serial:08d}"
            thread.created_serial += 1
        return path

    def _delete_one(self, thread: _ThreadState) -> float:
        if not self.fileset.paths:
            return 0.0
        index = self.rng.randrange(len(self.fileset.paths))
        path = self.fileset.paths[index]
        # Close any descriptors (from any thread) that reference the file.
        for state in self._threads:
            fd = state.fds.pop(index, None)
            if fd is not None:
                self.stack.vfs.close_uncharged(fd)
        latency = self.stack.vfs.unlink(path)
        # Swap-remove to keep indices dense; fix up fd maps for the moved slot.
        last = len(self.fileset.paths) - 1
        self.fileset.paths[index] = self.fileset.paths[last]
        self.fileset.sizes[index] = self.fileset.sizes[last]
        self.fileset.paths.pop()
        self.fileset.sizes.pop()
        for state in self._threads:
            moved_fd = state.fds.pop(last, None)
            if moved_fd is not None and index < len(self.fileset.paths):
                state.fds[index] = moved_fd
            state.sequential_offsets.pop(index, None)
            state.sequential_offsets.pop(last, None)
        return latency
