"""Random distributions used by workload generators.

File sizes, file popularity and I/O offsets in real workloads are rarely
uniform; these small distribution classes let workload specifications say so
explicitly.  Every distribution draws from a caller-supplied
``random.Random`` so whole runs are reproducible from one seed.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence


class SizeDistribution(ABC):
    """A distribution over non-negative integer sizes (bytes)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one size."""

    @abstractmethod
    def mean(self) -> float:
        """Expected size."""


class FixedValue(SizeDistribution):
    """Always the same size."""

    def __init__(self, value: int) -> None:
        if value < 0:
            raise ValueError("value must be non-negative")
        self.value = int(value)

    def sample(self, rng: random.Random) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)

    def __repr__(self) -> str:
        return f"FixedValue({self.value})"


class UniformSizes(SizeDistribution):
    """Uniform sizes in ``[low, high]``, rounded to ``granularity``."""

    def __init__(self, low: int, high: int, granularity: int = 1) -> None:
        if low < 0 or high < low or granularity <= 0:
            raise ValueError("require 0 <= low <= high and granularity > 0")
        self.low = int(low)
        self.high = int(high)
        self.granularity = int(granularity)

    def sample(self, rng: random.Random) -> int:
        value = rng.randint(self.low, self.high)
        return max(self.granularity, (value // self.granularity) * self.granularity)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformSizes([{self.low}, {self.high}])"


class LogNormalSizes(SizeDistribution):
    """Log-normal sizes (most files small, a few large), clamped to a range."""

    def __init__(self, median: int, sigma: float = 1.0, low: int = 1, high: int = 2 ** 40) -> None:
        if median <= 0 or sigma < 0 or low <= 0 or high < low:
            raise ValueError("invalid log-normal size parameters")
        self.median = int(median)
        self.sigma = float(sigma)
        self.low = int(low)
        self.high = int(high)
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> int:
        value = int(rng.lognormvariate(self._mu, self.sigma))
        return max(self.low, min(self.high, value))

    def mean(self) -> float:
        return self.median * math.exp(self.sigma ** 2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalSizes(median={self.median}, sigma={self.sigma})"


class Selector(ABC):
    """A distribution over indices ``[0, n)`` used to pick files."""

    @abstractmethod
    def pick(self, n: int, rng: random.Random) -> int:
        """Pick an index in ``[0, n)``."""


class UniformSelector(Selector):
    """Every item equally likely."""

    def pick(self, n: int, rng: random.Random) -> int:
        if n <= 0:
            raise ValueError("cannot pick from an empty set")
        return rng.randrange(n)

    def __repr__(self) -> str:
        return "UniformSelector()"


class ZipfSelector(Selector):
    """Zipf-distributed popularity: item 0 is the most popular.

    Uses the standard rejection-free inversion over the harmonic partial sums,
    precomputed lazily for each distinct ``n``.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)
        self._cdf_cache: dict = {}

    def _cdf(self, n: int) -> List[float]:
        cached = self._cdf_cache.get(n)
        if cached is not None:
            return cached
        weights = [1.0 / (i + 1) ** self.alpha for i in range(n)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        self._cdf_cache[n] = cdf
        return cdf

    def pick(self, n: int, rng: random.Random) -> int:
        if n <= 0:
            raise ValueError("cannot pick from an empty set")
        cdf = self._cdf(n)
        u = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __repr__(self) -> str:
        return f"ZipfSelector(alpha={self.alpha})"


class ChoiceDistribution:
    """A weighted choice over arbitrary items (used for op mixes)."""

    def __init__(self, items: Sequence, weights: Sequence[float]) -> None:
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length and non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.items = list(items)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def pick(self, rng: random.Random):
        """Draw one item according to the weights."""
        u = rng.random()
        for cum, item in zip(self._cumulative, self.items):
            if u <= cum:
                return item
        return self.items[-1]

    def __repr__(self) -> str:
        return f"ChoiceDistribution({len(self.items)} items)"
