"""Filebench-like macro personalities.

These reproduce the spirit of the standard Filebench personalities that the
surveyed papers most often report (webserver, fileserver, varmail, oltp).
The paper's Table 1 classifies Filebench as *exercising* many dimensions
without isolating any of them -- which is exactly how these specs are tagged.
"""

from __future__ import annotations

from repro.workloads.fileset import FilesetSpec
from repro.workloads.randomdist import LogNormalSizes, UniformSizes
from repro.workloads.spec import (
    FileSelector,
    FlowOp,
    OffsetMode,
    OpType,
    WorkloadSpec,
)

KiB = 1024
MiB = 1024 * 1024


def webserver_personality(
    file_count: int = 1000,
    mean_file_size: int = 16 * KiB,
    threads: int = 4,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Filebench ``webserver``: whole-file reads of many small files plus a log append."""
    return WorkloadSpec(
        name="webserver",
        description="Whole-file reads of small files with an appended access log",
        flowops=[
            FlowOp(op=OpType.OPEN, file_selector=FileSelector.RANDOM),
            FlowOp(
                op=OpType.READ_WHOLE_FILE,
                iosize=64 * KiB,
                file_selector=FileSelector.RANDOM,
                repeat=10,
            ),
            FlowOp(op=OpType.CLOSE, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.APPEND, iosize=16 * KiB, file_selector=FileSelector.SAME),
        ],
        fileset=FilesetSpec(
            name="webset",
            file_count=file_count,
            size_distribution=LogNormalSizes(median=mean_file_size, sigma=1.0, low=KiB, high=1 * MiB),
            directories=20,
            prealloc_fraction=1.0,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["caching", "metadata", "scaling"],
    )


def fileserver_personality(
    file_count: int = 2000,
    mean_file_size: int = 128 * KiB,
    threads: int = 8,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Filebench ``fileserver``: create/write/read/delete/stat mix on a shared tree."""
    return WorkloadSpec(
        name="fileserver",
        description="SPECsfs-like mix of whole-file writes, reads, appends and deletes",
        flowops=[
            FlowOp(op=OpType.CREATE),
            FlowOp(op=OpType.WRITE_WHOLE_FILE, iosize=64 * KiB, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.APPEND, iosize=16 * KiB, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.READ_WHOLE_FILE, iosize=64 * KiB, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.DELETE),
            FlowOp(op=OpType.STAT, file_selector=FileSelector.RANDOM),
        ],
        fileset=FilesetSpec(
            name="fileset",
            file_count=file_count,
            size_distribution=LogNormalSizes(median=mean_file_size, sigma=1.2, low=KiB, high=4 * MiB),
            directories=50,
            prealloc_fraction=0.8,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata", "ondisk", "caching", "scaling"],
    )


def varmail_personality(
    file_count: int = 1000,
    threads: int = 16,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Filebench ``varmail``: mail-server style create/append/fsync/read/delete."""
    return WorkloadSpec(
        name="varmail",
        description="Mail-server pattern: create, append+fsync, read, delete",
        flowops=[
            FlowOp(op=OpType.CREATE),
            FlowOp(op=OpType.APPEND, iosize=16 * KiB, file_selector=FileSelector.RANDOM, fsync_after=True),
            FlowOp(op=OpType.READ_WHOLE_FILE, iosize=1 * MiB, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.APPEND, iosize=16 * KiB, file_selector=FileSelector.RANDOM, fsync_after=True),
            FlowOp(op=OpType.DELETE),
        ],
        fileset=FilesetSpec(
            name="mailset",
            file_count=file_count,
            size_distribution=UniformSizes(4 * KiB, 64 * KiB, granularity=KiB),
            directories=16,
            prealloc_fraction=1.0,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata", "io"],
    )


def oltp_personality(
    database_size: int = 256 * MiB,
    log_write_size: int = 16 * KiB,
    threads: int = 8,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """Filebench ``oltp``: random database reads/writes with synchronous log writes."""
    return WorkloadSpec(
        name="oltp",
        description="Random 8 KiB reads/writes of a database file plus synchronous log appends",
        flowops=[
            FlowOp(
                op=OpType.READ,
                iosize=8 * KiB,
                offset_mode=OffsetMode.RANDOM,
                file_selector=FileSelector.SAME,
                repeat=10,
            ),
            FlowOp(
                op=OpType.WRITE,
                iosize=8 * KiB,
                offset_mode=OffsetMode.RANDOM,
                file_selector=FileSelector.SAME,
                repeat=2,
            ),
            FlowOp(op=OpType.APPEND, iosize=log_write_size, file_selector=FileSelector.ROUND_ROBIN, fsync_after=True),
        ],
        fileset=FilesetSpec(
            name="oltpset",
            file_count=2,  # database file + redo log
            size_distribution=UniformSizes(database_size, database_size),
            directories=1,
            prealloc_fraction=1.0,
        ),
        threads=threads,
        op_overhead_ns=op_overhead_ns,
        dimensions=["io", "caching", "scaling"],
    )
