"""The workload registry: the grid's name -> factory resolver.

``WORKLOAD_REGISTRY`` mirrors ``repro.fs.stack.FS_REGISTRY`` for the workload
axis of the declarative experiment API: every entry maps a stable name to a
factory ``f(testbed) -> WorkloadSpec``.  Factories are *testbed-aware* so
working sets keep measuring what they claim to measure on any machine size
(the same sizing discipline :func:`repro.core.suite.default_suite` uses):
``random-read-cached`` is always well inside the page cache,
``random-read-ondisk`` always 4x beyond it, and so on.  The experiment grid
passes the *base* testbed, never a per-cell variant, so testbed axes
(``cache_mb``, ``device``, ``scheduler``) vary the machine under a fixed
workload rather than resizing the workload in lockstep.

Register additional workloads with :func:`register_workload`; grid axes may
also carry ready-made :class:`~repro.workloads.spec.WorkloadSpec` or
:class:`~repro.core.benchmark.NanoBenchmark` objects directly when a name is
not enough.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.fileset import FilesetSpec
from repro.workloads.micro import (
    append_workload,
    create_delete_workload,
    metadata_mix_workload,
    random_read_workload,
    random_write_workload,
    sequential_read_workload,
    sequential_write_workload,
    stat_workload,
)
from repro.workloads.personalities import (
    fileserver_personality,
    oltp_personality,
    varmail_personality,
    webserver_personality,
)
from repro.workloads.randomdist import UniformSizes
from repro.workloads.spec import FileSelector, FlowOp, OpType, WorkloadSpec

KiB = 1024
MiB = 1024 * 1024

#: name -> factory(testbed) -> WorkloadSpec.  The experiment grid resolves
#: its ``workload`` axis here; ``fsbench-rocket list`` enumerates it.
WORKLOAD_REGISTRY: Dict[str, Callable[..., WorkloadSpec]] = {}


def register_workload(name: str, factory: Callable[..., WorkloadSpec]) -> None:
    """Register (or replace) a named workload factory.

    ``factory`` receives the cell's :class:`~repro.storage.config.TestbedConfig`
    as its only argument and must return a fresh
    :class:`~repro.workloads.spec.WorkloadSpec`.
    """
    if not name:
        raise ValueError("workload name must be non-empty")
    if not callable(factory):
        raise TypeError("workload factory must be callable")
    WORKLOAD_REGISTRY[name] = factory


def registered_workloads() -> List[str]:
    """Registered workload names, in registration order."""
    return list(WORKLOAD_REGISTRY)


def postmark_workload(
    file_count: int = 500,
    min_size: int = 512,
    max_size: int = 16 * KiB,
    subdirectories: int = 10,
    iosize: int = 4 * KiB,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """A PostMark-style transaction mix as a declarative workload spec.

    The classic PostMark loop (``repro.workloads.postmark.run_postmark``)
    drives a stack imperatively; this spec expresses the same transaction
    blend -- create/delete churn and read/append traffic over a pool of
    small files -- as flowops, so it can ride the measurement protocol,
    the parallel executor and the experiment grid like every other workload.
    """
    return WorkloadSpec(
        name="postmark",
        description=(
            "PostMark-style small-file transactions "
            "(create/delete + read/append over a shallow directory tree)"
        ),
        flowops=[
            FlowOp(op=OpType.CREATE),
            FlowOp(op=OpType.READ, iosize=iosize, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.APPEND, iosize=iosize, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.READ, iosize=iosize, file_selector=FileSelector.RANDOM),
            FlowOp(op=OpType.DELETE),
        ],
        fileset=FilesetSpec(
            name="postmark-pool",
            file_count=file_count,
            size_distribution=UniformSizes(min_size, max_size),
            directories=subdirectories,
            prealloc_fraction=1.0,
        ),
        op_overhead_ns=op_overhead_ns,
        dimensions=["metadata", "io", "caching"],
    )


def _cache_fraction(testbed, fraction: float, floor: int = 2 * MiB) -> int:
    """A working-set size relative to the testbed's page cache."""
    return max(floor, int(testbed.page_cache_bytes * fraction))


def _install_standard_workloads() -> None:
    """The shipped registry: micro components, macro personalities, PostMark."""
    register_workload(
        "random-read-cached", lambda testbed: random_read_workload(_cache_fraction(testbed, 0.25))
    )
    register_workload(
        "random-read-ondisk", lambda testbed: random_read_workload(_cache_fraction(testbed, 4.0))
    )
    register_workload(
        "cache-warmup", lambda testbed: random_read_workload(_cache_fraction(testbed, 0.95))
    )
    register_workload(
        "sequential-read", lambda testbed: sequential_read_workload(_cache_fraction(testbed, 4.0))
    )
    register_workload(
        "sequential-write",
        lambda testbed: sequential_write_workload(_cache_fraction(testbed, 1.0)),
    )
    register_workload(
        "random-write", lambda testbed: random_write_workload(_cache_fraction(testbed, 0.5))
    )
    register_workload("append-fsync", lambda testbed: append_workload(fsync_each=True))
    register_workload(
        "create-delete",
        lambda testbed: create_delete_workload(file_count=500, directories=10),
    )
    register_workload(
        "stat-scan", lambda testbed: stat_workload(file_count=2000, directories=40)
    )
    register_workload(
        "metadata-mix",
        lambda testbed: metadata_mix_workload(file_count=1000, directories=20),
    )
    register_workload("postmark", lambda testbed: postmark_workload())
    register_workload("webserver", lambda testbed: webserver_personality())
    register_workload("fileserver", lambda testbed: fileserver_personality())
    register_workload("varmail", lambda testbed: varmail_personality())
    register_workload("oltp", lambda testbed: oltp_personality())


_install_standard_workloads()
