"""Workload model and generators.

The paper's survey (Table 1) shows that most published evaluations either use
ad-hoc workload generators or macro-benchmarks whose dimension coverage is
unclear.  This subpackage provides:

* a small workload-description language (:mod:`repro.workloads.spec`) in the
  spirit of Filebench's flowops,
* fileset construction (:mod:`repro.workloads.fileset`) and random
  distributions (:mod:`repro.workloads.randomdist`),
* micro/nano workloads that isolate single dimensions
  (:mod:`repro.workloads.micro`),
* Filebench-like macro personalities (:mod:`repro.workloads.personalities`),
* PostMark-, compile- and IOmeter-like generators
  (:mod:`repro.workloads.postmark`, :mod:`repro.workloads.compilebench`,
  :mod:`repro.workloads.iomix`),
* trace capture/replay (:mod:`repro.workloads.trace`), and
* ``WORKLOAD_REGISTRY`` (:mod:`repro.workloads.registry`): the name->factory
  resolver behind the experiment grid's ``workload`` axis, mirroring
  ``FS_REGISTRY``.
"""

from repro.workloads.fileset import FilesetSpec, MaterializedFileset
from repro.workloads.micro import (
    append_workload,
    create_delete_workload,
    metadata_mix_workload,
    random_read_workload,
    random_write_workload,
    sequential_read_workload,
    sequential_write_workload,
    stat_workload,
)
from repro.workloads.personalities import (
    fileserver_personality,
    oltp_personality,
    varmail_personality,
    webserver_personality,
)
from repro.workloads.postmark import PostmarkConfig, PostmarkResult, run_postmark
from repro.workloads.compilebench import CompileBenchConfig, compile_workload
from repro.workloads.iomix import IomixProfile, run_iomix, STANDARD_PROFILES
from repro.workloads.randomdist import (
    ChoiceDistribution,
    FixedValue,
    LogNormalSizes,
    UniformSizes,
    ZipfSelector,
)
from repro.workloads.spec import (
    FileSelector,
    FlowOp,
    OffsetMode,
    OpRecord,
    OpType,
    WorkloadEngine,
    WorkloadSpec,
)
from repro.workloads.trace import TraceRecord, TraceRecorder, TraceReplayer, load_trace, save_trace
from repro.workloads.registry import (
    WORKLOAD_REGISTRY,
    postmark_workload,
    register_workload,
    registered_workloads,
)

__all__ = [
    "WORKLOAD_REGISTRY",
    "postmark_workload",
    "register_workload",
    "registered_workloads",
    "FilesetSpec",
    "MaterializedFileset",
    "append_workload",
    "create_delete_workload",
    "metadata_mix_workload",
    "random_read_workload",
    "random_write_workload",
    "sequential_read_workload",
    "sequential_write_workload",
    "stat_workload",
    "fileserver_personality",
    "oltp_personality",
    "varmail_personality",
    "webserver_personality",
    "PostmarkConfig",
    "PostmarkResult",
    "run_postmark",
    "CompileBenchConfig",
    "compile_workload",
    "IomixProfile",
    "run_iomix",
    "STANDARD_PROFILES",
    "ChoiceDistribution",
    "FixedValue",
    "LogNormalSizes",
    "UniformSizes",
    "ZipfSelector",
    "FileSelector",
    "FlowOp",
    "OffsetMode",
    "OpRecord",
    "OpType",
    "WorkloadEngine",
    "WorkloadSpec",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayer",
    "load_trace",
    "save_trace",
]
