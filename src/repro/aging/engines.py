"""Aging engines: churn a freshly-formatted stack into a realistic aged state.

Every benchmark in this repository used to start from a freshly-formatted
file system -- precisely the hidden-state assumption the paper warns about
(and that Traeger et al.'s nine-year survey found almost universally
undisclosed).  The engines here manufacture aged states deliberately and
reproducibly:

* :class:`ChurnAger` -- the Smith/Seltzer-style synthetic ager: fill the
  device with large files, pack the remaining space with hole-sized files,
  checkerboard-delete them, then run randomized create/append/delete churn.
  The result is free space shredded into hole-sized extents, so every file a
  subsequent benchmark creates is fragmented.
* :class:`TraceAger` -- replays a recorded trace (any
  :class:`~repro.workloads.trace.TraceRecord` stream) through
  :class:`~repro.workloads.trace.TraceReplayer`, so real workload history can
  be used as the aging medium.

Aging happens *outside* measured time: the engines drive the file system
through the uncharged VFS entry points, so the virtual clock (and therefore
any later measurement) is untouched by setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.aging.metrics import FragmentationReport, measure_fragmentation
from repro.fs.base import NoSpaceError
from repro.fs.stack import StorageStack
from repro.workloads.trace import TraceRecord, TraceReplayer

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class AgingConfig:
    """Parameters of the synthetic churn ager.

    Attributes
    ----------
    free_space_target_bytes:
        Free space left when aging finishes.  The ager fills the device down
        to roughly *twice* this amount with large files, packs the remainder
        with ``hole_bytes``-sized files and deletes every other one -- so the
        final free space consists of hole-sized extents scattered across the
        device.
    hole_bytes:
        Size of the packing files, and therefore of the free-space holes.
        Smaller holes mean more fragments per subsequently-created file.
    fill_file_bytes:
        Size of the large files used for the bulk fill (cheap: one file
        covers a lot of capacity).
    churn_ops:
        Randomized create/append/delete operations run after the
        checkerboard phase, for realism beyond the deterministic pattern.
    directories:
        Leaf directories the churn files are spread across.
    seed:
        Seed of the ager's private random source; aging is a pure function
        of ``(stack state, config)``.
    root:
        Top-level directory name the ager works under (so aged state never
        collides with benchmark filesets).
    """

    free_space_target_bytes: int = 2 * GiB
    hole_bytes: int = 1 * MiB
    fill_file_bytes: int = 1 * GiB
    churn_ops: int = 500
    directories: int = 10
    seed: int = 777
    root: str = "aged"

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical parameters."""
        if self.free_space_target_bytes <= 0:
            raise ValueError("free_space_target_bytes must be positive")
        if self.hole_bytes <= 0 or self.fill_file_bytes <= 0:
            raise ValueError("hole_bytes and fill_file_bytes must be positive")
        if self.hole_bytes > self.free_space_target_bytes:
            raise ValueError("hole_bytes must not exceed free_space_target_bytes")
        if self.churn_ops < 0:
            raise ValueError("churn_ops must be non-negative")
        if self.directories <= 0:
            raise ValueError("directories must be positive")
        if not self.root or "/" in self.root:
            raise ValueError("root must be a single path component")


def quick_aging_config(seed: int = 777) -> AgingConfig:
    """A small, fast aging profile for tests, CI and ``--quick`` runs.

    The holes are deliberately small (256 KiB): the quick profile must
    fragment even the extent allocator's best-fit placement hard enough that
    a short benchmark shows the aged-vs-fresh delta clearly.
    """
    return AgingConfig(
        free_space_target_bytes=256 * MiB,
        hole_bytes=256 * 1024,
        fill_file_bytes=1 * GiB,
        churn_ops=100,
        seed=seed,
    )


@dataclass
class AgingResult:
    """What an aging engine did to a stack, plus the resulting fragmentation."""

    engine: str
    files_created: int = 0
    files_deleted: int = 0
    bytes_allocated: int = 0
    final_utilization: float = 0.0
    fragmentation: Optional[FragmentationReport] = None

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"Aged with {self.engine}: created {self.files_created} files "
            f"({self.bytes_allocated // MiB} MiB), deleted {self.files_deleted}; "
            f"device now {100 * self.final_utilization:.1f}% full"
        ]
        if self.fragmentation is not None:
            lines.append(self.fragmentation.render())
        return "\n".join(lines)


class ChurnAger:
    """Synthetic fill + checkerboard + churn aging (see module docstring)."""

    def __init__(self, config: Optional[AgingConfig] = None) -> None:
        self.config = config if config is not None else AgingConfig()
        self.config.validate()

    # ---------------------------------------------------------------- helpers
    def _create_file(self, stack: StorageStack, path: str, size: int) -> None:
        """Create and fully allocate a file without charging virtual time.

        Atomic with respect to ENOSPC: when the allocation fails, the
        just-created inode is removed again before the error propagates, so
        callers may retry the same path later.
        """
        vfs = stack.vfs
        vfs.fs.create(path, stack.clock.now_ns)
        if size > 0:
            fd = vfs.open_uncharged(path)
            try:
                vfs.fallocate(fd, size, charge_time=False)
            except NoSpaceError:
                self._delete_file(stack, path)
                raise
            finally:
                vfs.close_uncharged(fd)

    def _delete_file(self, stack: StorageStack, path: str) -> None:
        inode = stack.vfs.fs.resolve(path)
        stack.cache.invalidate_inode(inode.number)
        stack.vfs.fs.unlink(path, stack.clock.now_ns)

    def _free_bytes(self, stack: StorageStack) -> int:
        return stack.fs.free_blocks() * stack.fs.block_size

    # ------------------------------------------------------------------- age
    def age(self, stack: StorageStack) -> AgingResult:
        """Age the mounted stack in place; returns what was done."""
        config = self.config
        rng = random.Random(config.seed)
        result = AgingResult(engine="churn")
        block = stack.fs.block_size
        # The hole size cannot be finer than the allocation unit.
        hole_bytes = max(config.hole_bytes, block)

        stack.vfs.mkdirs_uncharged(f"/{config.root}/fill")
        for index in range(config.directories):
            stack.vfs.mkdirs_uncharged(f"/{config.root}/churn/d{index}")

        # Phase 1: bulk fill with large files until only the churn region
        # (twice the final free-space target) remains.
        churn_region = 2 * config.free_space_target_bytes
        serial = 0
        while True:
            excess = self._free_bytes(stack) - churn_region
            if excess < hole_bytes:
                break
            size = min(config.fill_file_bytes, excess)
            size -= size % block
            if size <= 0:
                break
            try:
                self._create_file(stack, f"/{config.root}/fill/f{serial:05d}", size)
            except NoSpaceError:
                break
            serial += 1
            result.files_created += 1
            result.bytes_allocated += size

        # Phase 2: pack the remaining space with hole-sized files.
        churn_paths: List[str] = []
        serial = 0
        while self._free_bytes(stack) >= hole_bytes:
            path = f"/{config.root}/churn/d{serial % config.directories}/c{serial:06d}"
            try:
                self._create_file(stack, path, hole_bytes)
            except NoSpaceError:
                break
            churn_paths.append(path)
            serial += 1
            result.files_created += 1
            result.bytes_allocated += hole_bytes

        # Phase 3: checkerboard -- delete every other packing file, leaving
        # hole-sized free extents scattered across the device.
        survivors: List[str] = []
        for index, path in enumerate(churn_paths):
            if index % 2 == 0:
                self._delete_file(stack, path)
                result.files_deleted += 1
            else:
                survivors.append(path)

        # Phase 4: randomized churn on top of the deterministic pattern.
        for _ in range(config.churn_ops):
            roll = rng.random()
            if roll < 0.4 and survivors:
                victim = rng.randrange(len(survivors))
                self._delete_file(stack, survivors[victim])
                survivors[victim] = survivors[-1]
                survivors.pop()
                result.files_deleted += 1
            elif roll < 0.8:
                path = f"/{config.root}/churn/d{serial % config.directories}/c{serial:06d}"
                size = rng.randrange(block, hole_bytes + 1)
                size -= size % block
                try:
                    self._create_file(stack, path, max(block, size))
                except NoSpaceError:
                    continue
                survivors.append(path)
                serial += 1
                result.files_created += 1
                result.bytes_allocated += max(block, size)
            elif survivors:
                path = survivors[rng.randrange(len(survivors))]
                vfs = stack.vfs
                fd = vfs.open_uncharged(path)
                try:
                    grow = vfs.open_file(fd).inode.size_bytes + max(block, hole_bytes // 4)
                    vfs.fallocate(fd, grow, charge_time=False)
                    result.bytes_allocated += max(block, hole_bytes // 4)
                except NoSpaceError:
                    pass
                finally:
                    vfs.close_uncharged(fd)

        result.final_utilization = stack.fs.utilization()
        result.fragmentation = measure_fragmentation(stack.fs)
        return result


class TraceAger:
    """Age a stack by replaying a recorded operation trace.

    The trace drives the file system through the same replay machinery used
    for evaluation (:class:`~repro.workloads.trace.TraceReplayer`), repeated
    ``passes`` times; each pass deletes nothing by itself, so traces with
    create/delete churn age the allocator exactly as the original workload
    did.  Unlike :class:`ChurnAger`, trace replay charges virtual time (it
    *is* a workload); snapshot the stack afterwards to reuse the aged state
    without re-paying that time.
    """

    def __init__(self, records: Iterable[TraceRecord], passes: int = 1) -> None:
        self.records = list(records)
        if passes <= 0:
            raise ValueError("passes must be positive")
        self.passes = passes

    def age(self, stack: StorageStack) -> AgingResult:
        """Replay the trace ``passes`` times against the stack."""
        result = AgingResult(engine="trace")
        creates_before = stack.fs.stats.creates
        unlinks_before = stack.fs.stats.unlinks
        replayer = TraceReplayer(stack, honour_timing=False, create_missing=True)
        for _ in range(self.passes):
            replayer.replay(self.records)
        result.files_created = stack.fs.stats.creates - creates_before
        result.files_deleted = stack.fs.stats.unlinks - unlinks_before
        result.final_utilization = stack.fs.utilization()
        result.fragmentation = measure_fragmentation(stack.fs)
        return result
