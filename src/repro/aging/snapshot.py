"""Deterministic state snapshots of a simulated storage stack.

The paper's core complaint is that published results never describe the
benchmark's *state* -- cache contents, on-disk layout, device fullness -- so
nobody can reproduce them.  A :class:`StateSnapshot` is that description made
executable: it serialises the full state of a :class:`~repro.fs.stack.StorageStack`
(namespace, inode extent maps, allocator free maps, journal position,
delayed-allocation reservations, page cache contents, virtual clock) to a
plain JSON document that can be archived next to a paper, diffed, and
restored anywhere.  Every registered file system -- ext2, ext3, ext4, xfs --
round-trips: the delalloc and journal sections cover the ext4/xfs write
paths, and the allocator section covers all three allocator families.

Determinism is the contract: ``restore_stack`` is a pure function of the
snapshot and its arguments, so two restores -- in the same process, in
different processes, on different machines -- produce stacks that behave
**bit-identically** under any subsequent workload.  The ``fingerprint``
(SHA-256 over the canonical payload) names the state, and joins the parallel
executor's cache key so cached results are tied to the exact aged state they
were measured on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, TextIO, Union

from repro.fs.base import DirectoryEntry, Extent, Inode, InodeType
from repro.fs.journal import Journal
from repro.fs.stack import StorageStack, build_stack
from repro.storage.cache import CachePolicy
from repro.storage.config import CpuCosts, TestbedConfig
from repro.storage.disk import DiskGeometry

FORMAT_NAME = "fsbench-rocket-snapshot"
FORMAT_VERSION = 1


# ------------------------------------------------------------------ testbed
def _testbed_to_dict(testbed: TestbedConfig) -> Dict:
    return {
        "name": testbed.name,
        "ram_bytes": testbed.ram_bytes,
        "os_reserved_bytes": testbed.os_reserved_bytes,
        "page_size": testbed.page_size,
        "device_kind": testbed.device_kind,
        "disk_geometry": dataclasses.asdict(testbed.disk_geometry),
        "cache_policy": testbed.cache_policy.value,
        "io_scheduler": testbed.io_scheduler,
        "cpu": dataclasses.asdict(testbed.cpu),
    }


def _testbed_from_dict(payload: Dict) -> TestbedConfig:
    return TestbedConfig(
        name=payload["name"],
        ram_bytes=int(payload["ram_bytes"]),
        os_reserved_bytes=int(payload["os_reserved_bytes"]),
        page_size=int(payload["page_size"]),
        device_kind=payload["device_kind"],
        disk_geometry=DiskGeometry(**payload["disk_geometry"]),
        cache_policy=CachePolicy(payload["cache_policy"]),
        io_scheduler=payload["io_scheduler"],
        cpu=CpuCosts(**payload["cpu"]),
    )


# ----------------------------------------------------------------- capture
def _inode_to_dict(inode: Inode) -> Dict:
    return {
        "number": inode.number,
        "type": inode.inode_type.value,
        "size_bytes": inode.size_bytes,
        "nlink": inode.nlink,
        "atime_ns": inode.atime_ns,
        "mtime_ns": inode.mtime_ns,
        "ctime_ns": inode.ctime_ns,
        "extents": [[e.file_block, e.device_block, e.count] for e in inode.extents],
        # A list of triples, not a mapping: directory insertion order is part
        # of the state and must survive canonical (sorted-key) serialisation.
        "entries": [
            [entry.name, entry.inode_number, entry.inode_type.value]
            for entry in inode.entries.values()
        ],
        "symlink_target": inode.symlink_target,
    }


def _inode_from_dict(payload: Dict) -> Inode:
    inode = Inode(
        number=int(payload["number"]),
        inode_type=InodeType(payload["type"]),
        size_bytes=int(payload["size_bytes"]),
        nlink=int(payload["nlink"]),
        atime_ns=float(payload["atime_ns"]),
        mtime_ns=float(payload["mtime_ns"]),
        ctime_ns=float(payload["ctime_ns"]),
        symlink_target=payload.get("symlink_target"),
    )
    inode.extents = [
        Extent(file_block=int(fb), device_block=int(db), count=int(count))
        for fb, db, count in payload["extents"]
    ]
    for name, number, kind in payload["entries"]:
        inode.entries[name] = DirectoryEntry(name, int(number), InodeType(kind))
    return inode


def _journal_state(fs) -> Dict[str, Dict]:
    state: Dict[str, Dict] = {}
    for attr in ("journal", "log"):
        journal = getattr(fs, attr, None)
        if isinstance(journal, Journal):
            state[attr] = journal.export_state()
    return state


@dataclass(frozen=True)
class StateSnapshot:
    """A captured stack state plus its content fingerprint."""

    data: Dict
    fingerprint: str

    @property
    def fs_type(self) -> str:
        """File system the snapshot was taken from."""
        return self.data["fs_type"]

    @property
    def testbed(self) -> TestbedConfig:
        """The machine the snapshot was taken on."""
        return _testbed_from_dict(self.data["testbed"])

    def describe(self) -> str:
        """One-line summary for reports and the CLI."""
        fs = self.data["fs"]
        return (
            f"snapshot of {self.fs_type}: {len(fs['inodes'])} inodes, "
            f"{len(self.data['cache']['resident'])} cached pages, "
            f"fingerprint {self.fingerprint[:12]}"
        )


def _fingerprint(data: Dict) -> str:
    encoded = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def snapshot_stack(stack: StorageStack) -> StateSnapshot:
    """Capture the complete state of a stack as a :class:`StateSnapshot`."""
    fs = stack.fs
    inodes = [_inode_to_dict(fs._inodes[number]) for number in sorted(fs._inodes)]
    allocator = getattr(fs, "allocator", None)
    if allocator is None or not hasattr(allocator, "export_free_state"):
        raise ValueError(
            f"{type(fs).__name__} exposes no snapshot-capable allocator"
        )
    resident, dirty = stack.cache.export_state()
    rng_version, rng_internal, rng_gauss = stack.vfs.rng.getstate()
    data = {
        "fs_type": stack.fs_name,
        "seed": stack.seed,
        "clock_ns": stack.clock.now_ns,
        "device_busy_until_ns": stack.vfs._device_busy_until_ns,
        "testbed": _testbed_to_dict(stack.testbed),
        "rng_state": [rng_version, list(rng_internal), rng_gauss],
        "fs": {
            "block_size": fs.block_size,
            "total_blocks": fs.total_blocks,
            "next_inode": fs._next_inode,
            "root": fs.root.number,
            "inodes": inodes,
            "dir_goals": sorted(
                [ino, goal] for ino, goal in getattr(fs, "_dir_goal_block", {}).items()
            ),
            "allocator": allocator.export_free_state(),
            "delalloc": sorted(
                [ino, reserved]
                for ino, reserved in getattr(fs, "_delalloc_reservations", {}).items()
            ),
            "journal": _journal_state(fs),
        },
        "cache": {
            "resident": [list(key) for key in resident],
            "dirty": [list(key) for key in dirty],
        },
    }
    # Stateful device models (the FTL SSD) contribute their own section; the
    # key is *omitted* for stateless devices so snapshots taken on the
    # existing device kinds keep their exact fingerprints.
    export_device = getattr(stack.device.model, "export_state", None)
    if callable(export_device):
        data["device"] = export_device()
    return StateSnapshot(data=data, fingerprint=_fingerprint(data))


# ----------------------------------------------------------------- restore
def restore_stack(
    snapshot: StateSnapshot,
    testbed: Optional[TestbedConfig] = None,
    seed: Optional[int] = None,
    cpu_speed_factor: float = 1.0,
    restore_rng: bool = False,
) -> StorageStack:
    """Rebuild a live stack from a snapshot.

    Parameters
    ----------
    snapshot:
        The captured state.
    testbed:
        Machine to restore onto; defaults to the snapshot's recorded testbed.
        The device geometry and page size must match the snapshot (extent
        maps reference absolute device blocks); RAM may differ -- this is how
        the benchmark runner's environmental noise applies to aged states.
    seed, cpu_speed_factor:
        Stack seed and CPU factor, exactly as for
        :func:`~repro.fs.stack.build_stack`.  Defaults to the snapshot's
        recorded seed.
    restore_rng:
        When true, the VFS random source continues from the captured state
        (exact resume); when false (default) it is freshly seeded, which is
        what repetition-based measurement protocols need.

    Restoration is deterministic: the same snapshot and arguments always
    produce the same stack, in any process.
    """
    effective_testbed = testbed if testbed is not None else snapshot.testbed
    effective_seed = seed if seed is not None else int(snapshot.data["seed"])
    stack = build_stack(
        fs_type=snapshot.fs_type,
        testbed=effective_testbed,
        seed=effective_seed,
        cpu_speed_factor=cpu_speed_factor,
    )
    data = snapshot.data
    fs = stack.fs
    fs_state = data["fs"]
    # Extent maps reference absolute device blocks and page-cache keys are
    # (inode, page-index) pairs, so block/page geometry must match exactly;
    # build_stack derives the fs block size from the testbed page size, so
    # this single check covers both.
    if fs.block_size != int(fs_state["block_size"]) or fs.total_blocks != int(
        fs_state["total_blocks"]
    ):
        raise ValueError(
            "snapshot geometry mismatch: snapshot is "
            f"{fs_state['total_blocks']} x {fs_state['block_size']}B blocks, "
            f"target stack is {fs.total_blocks} x {fs.block_size}B"
        )

    # --- file system namespace, extent maps and allocator state
    fs._inodes = {}
    for payload in fs_state["inodes"]:
        inode = _inode_from_dict(payload)
        fs._inodes[inode.number] = inode
    fs._next_inode = int(fs_state["next_inode"])
    fs._root = fs._inodes[int(fs_state["root"])]
    if hasattr(fs, "_dir_goal_block"):
        fs._dir_goal_block = {int(ino): int(goal) for ino, goal in fs_state["dir_goals"]}
    fs.allocator.restore_free_state(
        [[(int(start), int(count)) for start, count in group] for group in fs_state["allocator"]]
    )
    if hasattr(fs, "_delalloc_reservations"):
        fs._delalloc_reservations = {
            int(ino): int(reserved) for ino, reserved in fs_state["delalloc"]
        }
    for attr, journal_state in fs_state["journal"].items():
        journal = getattr(fs, attr, None)
        if isinstance(journal, Journal):
            journal.restore_state(journal_state)

    # --- page cache contents (insertion order rebuilds the policy state)
    stack.cache.restore_state(
        resident=[(int(ino), int(page)) for ino, page in data["cache"]["resident"]],
        dirty=[(int(ino), int(page)) for ino, page in data["cache"]["dirty"]],
    )

    # --- device state (stateful models only; see snapshot_stack)
    if "device" in data:
        restore_device = getattr(stack.device.model, "restore_state", None)
        if not callable(restore_device):
            raise ValueError(
                f"snapshot carries device state but the target device "
                f"({type(stack.device.model).__name__}) cannot restore it; "
                f"restore onto a testbed with the snapshot's device kind "
                f"({snapshot.testbed.device_kind!r})"
            )
        restore_device(data["device"])

    # --- clock, device backlog, randomness
    stack.clock.advance(float(data["clock_ns"]) - stack.clock.now_ns)
    stack.vfs._device_busy_until_ns = float(data["device_busy_until_ns"])
    if restore_rng:
        version, internal, gauss = data["rng_state"]
        stack.vfs.rng.setstate((int(version), tuple(int(v) for v in internal), gauss))
    return stack


# ------------------------------------------------------------------- files
def save_snapshot(snapshot: StateSnapshot, destination: Union[str, TextIO]) -> None:
    """Write a snapshot to a JSON file or file object."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "fingerprint": snapshot.fingerprint,
        "data": snapshot.data,
    }
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle, sort_keys=True)
    else:
        json.dump(document, destination, sort_keys=True)


def load_snapshot(source: Union[str, TextIO]) -> StateSnapshot:
    """Read a snapshot written by :func:`save_snapshot`, verifying integrity."""
    if isinstance(source, str):
        with open(source, "r") as handle:
            document = json.load(handle)
    else:
        document = json.load(source)
    if not isinstance(document, dict) or document.get("format") != FORMAT_NAME:
        raise ValueError(f"not a {FORMAT_NAME} document")
    if int(document.get("version", -1)) > FORMAT_VERSION:
        raise ValueError(
            f"snapshot version {document.get('version')} is newer than supported "
            f"({FORMAT_VERSION})"
        )
    data = document.get("data")
    if not isinstance(data, dict):
        raise ValueError("malformed snapshot document: missing 'data' payload")
    fingerprint = _fingerprint(data)
    # save_snapshot always records the fingerprint; its absence means the
    # file was truncated or hand-edited, exactly what verification is for.
    if document.get("fingerprint") != fingerprint:
        raise ValueError("snapshot fingerprint mismatch: file is corrupt or was edited")
    return StateSnapshot(data=data, fingerprint=fingerprint)


@lru_cache(maxsize=8)
def _load_snapshot_cached(path: str, mtime_ns: int, size: int) -> StateSnapshot:
    return load_snapshot(path)


def load_snapshot_cached(path: str) -> StateSnapshot:
    """Load a snapshot file with caching keyed on (path, mtime, size).

    Repetition fan-out restores the same snapshot once per repetition; the
    cache makes that one parse per worker process instead.
    """
    stat = os.stat(path)
    return _load_snapshot_cached(path, stat.st_mtime_ns, stat.st_size)


def snapshot_fingerprint(path: str) -> str:
    """Fingerprint of a snapshot file (loads and verifies it)."""
    return load_snapshot_cached(path).fingerprint


def snapshot_stack_factory(
    path: str,
) -> Callable[[str, TestbedConfig, int, float], StorageStack]:
    """A :class:`~repro.core.runner.BenchmarkRunner` stack factory restoring ``path``.

    The returned callable has the runner's stack-factory signature
    ``(fs_type, testbed, seed, cpu_speed_factor)``; ``fs_type`` must match
    the snapshot's file system.
    """

    def factory(
        fs_type: str, testbed: TestbedConfig, seed: int, cpu_speed_factor: float
    ) -> StorageStack:
        snapshot = load_snapshot_cached(path)
        if fs_type != snapshot.fs_type:
            raise ValueError(
                f"snapshot {path} holds {snapshot.fs_type!r} state, requested {fs_type!r}"
            )
        return restore_stack(
            snapshot, testbed=testbed, seed=seed, cpu_speed_factor=cpu_speed_factor
        )

    return factory
