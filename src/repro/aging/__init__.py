"""Filesystem aging and state snapshots.

Benchmarks in this repository used to start, implicitly, from a
freshly-formatted file system.  This subpackage makes benchmark state an
explicit, controlled, *published* variable -- the paper's missing scenario
axis:

* :mod:`repro.aging.engines` -- aging engines that churn a mounted stack
  into realistic aged states (synthetic fill/checkerboard/churn, or replay
  of a recorded trace);
* :mod:`repro.aging.metrics` -- fragmentation metrics: per-file layout
  scores, extent-count histograms and allocator free-space statistics;
* :mod:`repro.aging.snapshot` -- deterministic
  :class:`~repro.aging.snapshot.StateSnapshot` serialisation of full stack
  state, so aged states are reproducible, shareable artifacts whose
  fingerprint joins the result-cache key;
* :mod:`repro.aging.experiment` -- the aged-vs-fresh comparison experiment.

Device state is part of stack state: snapshots of stacks on the stateful
``ssd-ftl`` device capture and restore the FTL mapping bit-identically, and
:func:`~repro.storage.flash.precondition_ssd` (re-exported here as the
device-level ager) manufactures steady-state SSDs the same way the engines
manufacture aged file systems.
"""

from repro.aging.engines import (
    AgingConfig,
    AgingResult,
    ChurnAger,
    TraceAger,
    quick_aging_config,
)
from repro.aging.experiment import (
    AgedVsFreshCell,
    AgedVsFreshResult,
    run_aged_vs_fresh,
)
from repro.aging.metrics import (
    FragmentationReport,
    layout_score,
    measure_fragmentation,
)
from repro.aging.snapshot import (
    StateSnapshot,
    load_snapshot,
    restore_stack,
    save_snapshot,
    snapshot_fingerprint,
    snapshot_stack,
    snapshot_stack_factory,
)
from repro.storage.flash import PreconditionReport, precondition_ssd

__all__ = [
    "PreconditionReport",
    "precondition_ssd",
    "AgingConfig",
    "AgingResult",
    "ChurnAger",
    "TraceAger",
    "quick_aging_config",
    "AgedVsFreshCell",
    "AgedVsFreshResult",
    "run_aged_vs_fresh",
    "FragmentationReport",
    "layout_score",
    "measure_fragmentation",
    "StateSnapshot",
    "load_snapshot",
    "restore_stack",
    "save_snapshot",
    "snapshot_fingerprint",
    "snapshot_stack",
    "snapshot_stack_factory",
]
