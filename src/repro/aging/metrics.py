"""Fragmentation metrics for aged file systems.

The aging engines churn a file system into a used state; this module
quantifies *how* used it is, from both sides of the allocator:

* **per-file layout**: the fraction of each file's blocks that are physically
  contiguous with their predecessor (the e2fsprogs/e4defrag "layout score":
  1.0 = perfectly laid out), plus a log2 histogram of per-file extent counts;
* **free space**: extent counts, largest run and a fragmentation score,
  reported identically for both allocator families via
  :meth:`~repro.fs.allocation.FreeSpaceInspectionMixin.free_space_stats`.

These are the numbers the paper says published evaluations should disclose
alongside results: "fresh vs. aged" is meaningless unless "aged" is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.fs.allocation import FreeSpaceStats
from repro.fs.base import FileSystem, Inode


def layout_score(inode: Inode) -> float:
    """Fraction of a file's block-to-block transitions that are contiguous.

    1.0 means every block physically follows its predecessor (no seeks when
    read sequentially); 0.0 means every block requires a discontiguity.
    Empty and single-block files score 1.0.
    """
    blocks = inode.blocks_allocated()
    if blocks <= 1:
        return 1.0
    return 1.0 - inode.fragmentation() / (blocks - 1)


def iter_regular_files(fs: FileSystem) -> Iterator[Tuple[str, Inode]]:
    """Yield ``(path, inode)`` for every regular file, in path-sorted order."""
    stack: List[Tuple[str, Inode]] = [("", fs.root)]
    files: List[Tuple[str, Inode]] = []
    while stack:
        prefix, directory = stack.pop()
        for name in directory.entries:
            entry = directory.entries[name]
            path = f"{prefix}/{name}"
            inode = fs.inode(entry.inode_number)
            if inode.is_directory:
                stack.append((path, inode))
            elif inode.is_regular:
                files.append((path, inode))
    files.sort(key=lambda item: item[0])
    return iter(files)


def _extent_bucket(extent_count: int) -> str:
    """Log2 bucket label for an extent count (1, 2, 3-4, 5-8, ...)."""
    if extent_count <= 1:
        return "1"
    if extent_count == 2:
        return "2"
    low = 2
    while extent_count > low * 2:
        low *= 2
    return f"{low + 1}-{low * 2}"


@dataclass
class FragmentationReport:
    """Fragmentation state of one mounted file system.

    Attributes
    ----------
    fs_name:
        Name of the file system measured.
    utilization:
        Fraction of data blocks allocated.
    file_count:
        Regular files examined.
    mean_layout_score, worst_layout_score:
        Per-file layout scores (see :func:`layout_score`) aggregated.
    extent_histogram:
        Log2 histogram of per-file extent counts (bucket label -> files).
    free_space:
        Allocator-side free-space statistics, or ``None`` when the file
        system model exposes no allocator.
    delalloc_reserved_bytes:
        Bytes reserved by delayed allocation but not yet backed by extents
        (ext4/xfs).  Files that are pure reservations have no layout yet and
        are excluded from the per-file scores, so a non-zero value here says
        the layout metrics describe only the materialised part of the state.
    """

    fs_name: str
    utilization: float
    file_count: int
    mean_layout_score: float
    worst_layout_score: float
    extent_histogram: Dict[str, int] = field(default_factory=dict)
    free_space: Optional[FreeSpaceStats] = None
    delalloc_reserved_bytes: int = 0

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Fragmentation of {self.fs_name} ({100 * self.utilization:.1f}% full)",
            f"  files: {self.file_count}, layout score mean {self.mean_layout_score:.3f}"
            f" / worst {self.worst_layout_score:.3f}",
        ]
        if self.extent_histogram:
            buckets = ", ".join(
                f"{bucket}: {count}" for bucket, count in self.extent_histogram.items()
            )
            lines.append(f"  extents per file: {buckets}")
        if self.free_space is not None:
            free = self.free_space
            lines.append(
                f"  free space: {free.free_blocks} blocks in {free.extent_count} extents "
                f"(largest {free.largest_extent_blocks}, "
                f"fragmentation {free.fragmentation_score:.3f})"
            )
        if self.delalloc_reserved_bytes:
            lines.append(
                f"  delalloc: {self.delalloc_reserved_bytes} bytes reserved, not yet allocated"
            )
        return "\n".join(lines)


def measure_fragmentation(fs: FileSystem) -> FragmentationReport:
    """Compute the full :class:`FragmentationReport` for a file system."""
    scores: List[float] = []
    histogram: Dict[str, int] = {}
    count = 0
    for _, inode in iter_regular_files(fs):
        if not inode.extents:
            continue
        count += 1
        scores.append(layout_score(inode))
        bucket = _extent_bucket(len(inode.extents))
        histogram[bucket] = histogram.get(bucket, 0) + 1

    allocator = getattr(fs, "allocator", None)
    free_space = (
        allocator.free_space_stats()
        if allocator is not None and hasattr(allocator, "free_space_stats")
        else None
    )
    reserved = getattr(fs, "delalloc_reserved_bytes", None)
    return FragmentationReport(
        fs_name=fs.name,
        utilization=fs.utilization(),
        file_count=count,
        mean_layout_score=sum(scores) / len(scores) if scores else 1.0,
        worst_layout_score=min(scores, default=1.0),
        extent_histogram=dict(sorted(histogram.items(), key=lambda kv: _bucket_sort_key(kv[0]))),
        free_space=free_space,
        delalloc_reserved_bytes=reserved() if callable(reserved) else 0,
    )


def _bucket_sort_key(label: str) -> int:
    return int(label.split("-")[0])
