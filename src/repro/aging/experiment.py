"""The aged-vs-fresh comparison experiment.

The scenario axis the paper (and the Traeger et al. survey before it) says
published evaluations ignore: the same benchmark, on the same machine, on a
freshly-formatted file system versus a realistically aged one.  For each file
system this experiment

1. ages a stack with :class:`~repro.aging.engines.ChurnAger`,
2. snapshots the aged state (so the exact state is a shareable artifact and
   every aged repetition restores the identical starting point),
3. runs the same cold-cache sequential-read benchmark against fresh and
   aged states under the full measurement protocol, and
4. reports throughput ranges side by side with the fragmentation metrics
   and explicit :mod:`~repro.analysis.fragility` warnings when aged and
   fresh results diverge.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aging.engines import AgingConfig, AgingResult, ChurnAger
from repro.aging.snapshot import save_snapshot, snapshot_stack
from repro.analysis.fragility import FragilityWarning, assess_aging
from repro.core.experiment import Experiment, ParameterGrid
from repro.core.report import format_table
from repro.core.results import RepetitionSet
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.fs.stack import build_stack
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.micro import sequential_read_workload

MiB = 1024 * 1024


@dataclass
class AgedVsFreshCell:
    """Fresh and aged measurements of one benchmark on one file system."""

    fs_type: str
    fresh: RepetitionSet
    aged: RepetitionSet
    aging: AgingResult
    snapshot_path: str
    snapshot_fingerprint: str
    warnings: List[FragilityWarning] = field(default_factory=list)

    @property
    def slowdown_factor(self) -> float:
        """Mean fresh throughput divided by mean aged throughput (>1 = aging hurts)."""
        aged_mean = self.aged.throughput_summary().mean
        if aged_mean <= 0:
            return float("inf")
        return self.fresh.throughput_summary().mean / aged_mean


@dataclass
class AgedVsFreshResult:
    """All cells of one aged-vs-fresh experiment."""

    testbed: TestbedConfig
    workload_name: str
    cells: Dict[str, AgedVsFreshCell] = field(default_factory=dict)

    def render(self) -> str:
        """Full report: ranges, fragmentation metrics and fragility warnings."""
        lines = [
            "Aged vs. fresh comparison",
            "=========================",
            f"workload: {self.workload_name} on {self.testbed.describe()}",
            "",
        ]
        headers = ["FS", "fresh (ops/s)", "aged (ops/s)", "slowdown", "layout score", "free frag"]
        rows = []
        for fs_type, cell in self.cells.items():
            fresh = cell.fresh.throughput_summary()
            aged = cell.aged.throughput_summary()
            frag = cell.aging.fragmentation
            rows.append(
                [
                    fs_type,
                    f"{fresh.mean:.0f} +/-{fresh.relative_stddev_percent:.0f}%",
                    f"{aged.mean:.0f} +/-{aged.relative_stddev_percent:.0f}%",
                    f"{cell.slowdown_factor:.2f}x",
                    f"{frag.mean_layout_score:.3f}" if frag else "-",
                    f"{frag.free_space.fragmentation_score:.3f}"
                    if frag and frag.free_space
                    else "-",
                ]
            )
        lines.append(format_table(headers, rows))
        for fs_type, cell in self.cells.items():
            lines.append("")
            lines.append(f"[{fs_type}] state snapshot: {cell.snapshot_path}")
            lines.append(f"[{fs_type}] fingerprint: {cell.snapshot_fingerprint}")
            for warning in cell.warnings:
                lines.append(f"[{fs_type}] {warning.format()}")
            if not cell.warnings:
                lines.append(f"[{fs_type}] no aging fragility indicators")
        return "\n".join(lines)


def default_benchmark_config(quick: bool = False) -> BenchmarkConfig:
    """Cold-cache protocol for the on-disk aged-vs-fresh comparison."""
    return BenchmarkConfig(
        duration_s=5.0 if quick else 20.0,
        repetitions=3 if quick else 5,
        warmup_mode=WarmupMode.NONE,
        cold_cache=True,
    )


def run_aged_vs_fresh(
    fs_types: Sequence[str] = ("ext2", "ext4", "xfs"),
    testbed: Optional[TestbedConfig] = None,
    aging: Optional[AgingConfig] = None,
    config: Optional[BenchmarkConfig] = None,
    workload_bytes: Optional[int] = None,
    snapshot_dir: Optional[str] = None,
    quick: bool = False,
) -> AgedVsFreshResult:
    """Run the aged-vs-fresh experiment on each file system.

    Parameters
    ----------
    fs_types:
        File systems to compare (each against its own fresh baseline).
    testbed, config:
        Machine and measurement protocol; defaults to the paper testbed and
        :func:`default_benchmark_config`.
    aging:
        Aging profile; defaults to :class:`AgingConfig` (or its quick variant
        when ``quick`` is set).
    workload_bytes:
        Size of the sequentially-read file.  Defaults to 4x the page cache,
        clamped below the aged free space so the aged allocation succeeds.
    snapshot_dir:
        Where the per-file-system state snapshots are written (created if
        missing).  Defaults to a fresh private temp directory per run so
        concurrent experiments can never clobber each other's state; the
        snapshots are part of the result (``cell.snapshot_path``) and the
        caller owns them -- pass an explicit ``snapshot_dir`` (or delete the
        reported paths) to manage their lifetime.

    .. deprecated:: 1.3
        Thin shim: each file system's fresh/aged pair is one
        :class:`~repro.core.experiment.Experiment` with a two-valued
        ``snapshot`` axis; declare that grid directly for custom aged
        comparisons (more file systems, more workloads, more snapshots --
        all just axes).
    """
    warnings.warn(
        "run_aged_vs_fresh is a deprecation shim; declare an Experiment with "
        "a snapshot axis instead (repro.core.experiment)",
        DeprecationWarning,
        stacklevel=2,
    )
    testbed = testbed if testbed is not None else paper_testbed()
    if aging is None:
        from repro.aging.engines import quick_aging_config

        aging = quick_aging_config() if quick else AgingConfig()
    config = config if config is not None else default_benchmark_config(quick)
    if workload_bytes is None:
        workload_bytes = min(
            4 * testbed.page_cache_bytes, int(aging.free_space_target_bytes * 0.8)
        )
    workload_bytes = max(workload_bytes, 8 * MiB)
    if workload_bytes >= aging.free_space_target_bytes:
        raise ValueError(
            f"workload_bytes ({workload_bytes}) must be below the aged free space "
            f"({aging.free_space_target_bytes})"
        )
    if snapshot_dir is None:
        snapshot_dir = tempfile.mkdtemp(prefix="fsbench-aged-")
    os.makedirs(snapshot_dir, exist_ok=True)

    spec = sequential_read_workload(workload_bytes)
    result = AgedVsFreshResult(testbed=testbed, workload_name=spec.name)

    for fs_type in dict.fromkeys(fs_types):
        stack = build_stack(fs_type, testbed=testbed, seed=aging.seed)
        aging_result = ChurnAger(aging).age(stack)
        snapshot = snapshot_stack(stack)
        path = os.path.join(snapshot_dir, f"aged-{fs_type}.snapshot.json")
        save_snapshot(snapshot, path)

        # Fresh vs aged is one experiment with a two-valued snapshot axis:
        # None means a freshly-formatted stack, the path the aged state.
        outcome = Experiment(
            grid=ParameterGrid.of(fs=[fs_type], workload=[spec], snapshot=[None, path]),
            name=f"aged-vs-fresh-{fs_type}",
            config=config,
            testbed=testbed,
        ).run()
        fresh = RepetitionSet(
            label=f"fresh:{spec.name}@{fs_type}",
            runs=list(outcome.result_for(snapshot=None).runs),
        )
        aged = RepetitionSet(
            label=f"aged:{spec.name}@{fs_type}",
            runs=list(outcome.result_for(snapshot=path).runs),
        )

        result.cells[fs_type] = AgedVsFreshCell(
            fs_type=fs_type,
            fresh=fresh,
            aged=aged,
            aging=aging_result,
            snapshot_path=path,
            snapshot_fingerprint=snapshot.fingerprint,
            warnings=assess_aging(fresh, aged),
        )
    return result
