"""Command-line interface: declarative experiment runs plus the paper's
figures and tables.

The primary entry point is ``run``, the CLI face of the declarative
experiment API (:mod:`repro.core.experiment`): every ``--axis`` adds one grid
dimension, and the cartesian product executes through the parallel engine
with streaming progress and a tidy JSONL/CSV result frame::

    fsbench-rocket run --axis fs=ext2,ext4 --axis workload=postmark \\
        --axis seed=0..4 --out results.jsonl
    fsbench-rocket run --axis fs=ext4 --axis workload=random-read-cached \\
        --axis cache_mb=64,128,256 --workers 0 --cache-dir .fsbench-cache
    fsbench-rocket list        # registered filesystems/workloads/devices/...

Axis values resolve by name through the registries ``list`` prints
(``FS_REGISTRY``, ``WORKLOAD_REGISTRY``, ``DEVICE_REGISTRY``,
``SCHEDULER_REGISTRY``); ``a..b`` is an inclusive integer range and any other
axis name is a :class:`~repro.core.runner.BenchmarkConfig` field override
(``--axis duration_s=5``).

``trace`` and ``explain`` answer the paper's "where did the time go?"
question for any single cell (see :mod:`repro.obs`)::

    fsbench-rocket trace --axis fs=ext4 --axis workload=postmark \\
        --out trace.jsonl --chrome trace.json
    fsbench-rocket explain --axis fs=ext4 --axis workload=postmark \\
        --cache-dir .fsbench-cache

``trace`` runs the cell with the virtual-time tracer attached and exports
the span events; ``explain`` re-runs a cached cell traced, proves the traced
measurement bit-identical to the cached one, and prints the per-layer
latency-attribution pivot.  Progress goes through ``logging`` to stderr
(``-v``/``--log-level`` control it); rendered tables stay on stdout.

``report`` and ``bench-diff`` watch the campaign and the harness itself
(see :mod:`repro.obs.telemetry` / :mod:`repro.obs.benchdiff`)::

    fsbench-rocket run --axis fs=ext4 --axis workload=postmark \\
        --telemetry telemetry.jsonl
    fsbench-rocket report telemetry.jsonl
    fsbench-rocket bench-diff BENCH_PR7.json BENCH_PR9.json --threshold 0.5

``run --telemetry`` logs every work unit's lifecycle (queued / cache-hit /
pack-hit / exec-start / exec-done / failed) with wall-clock phase profiles;
``report`` renders campaign health from that log, and ``bench-diff`` exits
non-zero when a shared benchmark's mean regressed beyond the threshold.

``results`` and ``cache`` manage measured cells at campaign scale (see
:mod:`repro.store`): a loose cache directory packs into a single
compressed, fingerprinted ``.frpack`` artifact that shards can merge and
any checkout can mount as a read-through cache tier::

    fsbench-rocket results pack --cache-dir .fsbench-cache --out campaign.frpack
    fsbench-rocket results verify campaign.frpack
    fsbench-rocket results query campaign.frpack --where fs=ext4
    fsbench-rocket run --axis fs=ext4 --axis workload=postmark \\
        --pack campaign.frpack
    fsbench-rocket cache .fsbench-cache   # inspect / integrity-scan / --clear

The legacy harness commands remain as shims over the same engine::

    fsbench-rocket table1 [--measured --quick]
    fsbench-rocket figure1 --fs ext2
    fsbench-rocket suite --quick --fs ext4 --fs xfs --workers 4
    fsbench-rocket survey --quick --workers 0
    fsbench-rocket age --quick --fs ext4 --out aged-ext4.snapshot.json
    fsbench-rocket suite --quick --fs ext4 --snapshot aged-ext4.snapshot.json

``--workers`` fans the grid out over worker processes (``0`` = one per CPU)
with bit-identical results; ``--cache-dir`` persists every measured cell so
repeated runs only simulate what has never been measured before
(``--no-cache`` overrides it).  ``age`` churns a file system into a realistic
aged state and saves it as a deterministic snapshot; pass it to ``run`` via
``--axis snapshot=PATH`` (or to suite/survey via ``--snapshot``) to measure
from the aged state.
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import replace
from typing import List, Optional

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.report import suite_report
from repro.core.suite import NanoBenchmarkSuite
from repro.core.survey import MeasuredSurvey
from repro.fs.stack import DEFAULT_FS_TYPES
from repro.experiments import (
    default_scale,
    paper_scale,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_fresh_vs_steady,
    run_scalability,
    run_table1,
    run_transition_zoom,
)
from repro.storage.config import DEFAULT_DEVICE_KINDS, paper_testbed, scaled_testbed
from repro.storage.device import SCHEDULER_REGISTRY

#: CLI choices derived from the registries, never hardcoded: a newly
#: registered device or scheduler kind appears in fsbench-rocket (flags and
#: ``list`` output) automatically.
DEVICE_CHOICES = DEFAULT_DEVICE_KINDS
SCHEDULER_CHOICES = tuple(SCHEDULER_REGISTRY)

#: Progress/diagnostics logger.  Everything here goes to stderr so stdout
#: stays machine-consumable (result tables, rendered reports, JSONL paths).
logger = logging.getLogger("fsbench-rocket")

LOG_LEVELS = ("debug", "info", "warning", "error")


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at emit time.

    Binding the stream lazily (instead of at configure time) keeps log
    output visible to anything that swaps ``sys.stderr`` after logging was
    configured -- pytest's capture machinery in particular.
    """

    def __init__(self) -> None:
        super().__init__(stream=sys.stderr)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler.__init__ assigns this
        pass


def _configure_logging(args) -> None:
    """Wire the CLI logger from ``-v``/``--log-level``/``--quiet``.

    Explicit ``--log-level`` wins; otherwise ``-v`` raises verbosity to
    DEBUG and ``--quiet`` (where the subcommand has it) lowers it to
    WARNING, keeping the historical default of progress lines on stderr.
    """
    if args.log_level is not None:
        level = getattr(logging, args.log_level.upper())
    elif args.verbose:
        level = logging.DEBUG
    elif getattr(args, "quiet", False):
        level = logging.WARNING
    else:
        level = logging.INFO
    logger.setLevel(level)
    logger.propagate = False
    if not logger.handlers:
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)


def _nonnegative_int(value: str) -> int:
    """argparse type for --workers: an int >= 0 (0 = one worker per CPU)."""
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
    return number


def _nonnegative_float(value: str) -> float:
    """argparse type for --threshold: a float >= 0."""
    number = float(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return number


def _testbed_fraction(value: str) -> float:
    """argparse type for --scaled-testbed: a fraction in (0, 1]."""
    number = float(value)
    if not (0 < number <= 1):
        raise argparse.ArgumentTypeError("must be a fraction in (0, 1]")
    return number


def _client_counts(value: str) -> tuple:
    """argparse type for --clients: comma-separated ints, at least two distinct."""
    try:
        counts = tuple(int(token) for token in value.split(",") if token.strip())
    except ValueError:
        raise argparse.ArgumentTypeError("must be comma-separated integers")
    if any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError("client counts must be >= 1")
    if len(set(counts)) < 2:
        raise argparse.ArgumentTypeError("need at least two distinct client counts")
    return counts


def _parse_axis_value(axis: str, token: str):
    """One axis value: int/float/bool coerced, anything else a string.

    Only the snapshot axis maps ``none``/``fresh`` to Python ``None`` (a
    fresh file system); everywhere else those tokens stay strings so enum
    fields like ``warmup_mode=none`` resolve to their enum values.
    """
    token = token.strip()
    lowered = token.lower()
    if axis == "snapshot" and lowered in ("none", "fresh"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_axis(text: str):
    """argparse type for --axis: ``NAME=V1[,V2...]`` with ``a..b`` int ranges."""
    name, sep, raw = text.partition("=")
    name = name.strip()
    if not sep or not name or not raw.strip():
        raise argparse.ArgumentTypeError(
            "expected NAME=VALUE[,VALUE...] (e.g. fs=ext2,ext4 or seed=0..4)"
        )
    values = []
    for token in raw.split(","):
        token = token.strip()
        low, range_sep, high = token.partition("..")
        if range_sep:
            # 'a..b' is an inclusive integer range only when both bounds are
            # integers; anything else (e.g. a snapshot path like ../aged.json)
            # falls through to a plain value.
            try:
                start, stop = int(low), int(high)
            except ValueError:
                values.append(_parse_axis_value(name, token))
                continue
            if stop < start:
                raise argparse.ArgumentTypeError(f"empty range: {token!r}")
            values.extend(range(start, stop + 1))
        else:
            values.append(_parse_axis_value(name, token))
    return name, values


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="fsbench-rocket",
        description="Reproduce the experiments of 'Benchmarking File System Benchmarking' (HotOS XIII).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full durations and repetition counts (slower)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="debug-level progress on stderr (result tables stay on stdout)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=LOG_LEVELS,
        help="explicit stderr log level (overrides -v and --quiet)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_cmd = subparsers.add_parser(
        "run",
        help="run a declarative experiment grid (--axis NAME=V1,V2 per dimension)",
    )
    run_cmd.add_argument(
        "--axis",
        action="append",
        type=_parse_axis,
        default=[],
        metavar="NAME=V1[,V2...]",
        help=(
            "add one grid axis (repeatable): fs/workload/device/scheduler by "
            "registry name, cache_mb in MiB, snapshot paths ('fresh' = no "
            "snapshot), seed with a..b ranges, or any BenchmarkConfig field"
        ),
    )
    run_cmd.add_argument(
        "--name", default="cli-run", help="experiment name recorded in the result frame"
    )
    run_cmd.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the tidy result frame here (.csv writes CSV, anything else JSONL)",
    )
    run_cmd.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (e.g. 0.125)",
    )
    run_cmd.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        metavar="N",
        help="worker processes for the grid fan-out (0 = one per CPU; default 1, serial)",
    )
    run_cmd.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist measured cells here and skip them on re-runs (default: no cache)",
    )
    run_cmd.add_argument(
        "--no-cache", action="store_true", help="ignore --cache-dir and measure everything fresh"
    )
    run_cmd.add_argument(
        "--pack",
        action="append",
        default=[],
        metavar="PACK",
        help="attach a packed result artifact (.frpack) as a read-through "
        "cache tier (repeatable; see 'fsbench-rocket results')",
    )
    run_cmd.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines on stderr"
    )
    run_cmd.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="write the executor's per-unit lifecycle event log (JSONL) here "
        "and profile wall-clock phases; render it with 'fsbench-rocket report'",
    )

    subparsers.add_parser(
        "list",
        help="list registered filesystems, workloads, devices, schedulers and experiments",
    )

    report_cmd = subparsers.add_parser(
        "report",
        help="render campaign health (stage breakdown, cache efficiency, "
        "worker utilization) from a telemetry JSONL file",
    )
    report_cmd.add_argument(
        "telemetry", metavar="TELEMETRY.jsonl", help="event log written by 'run --telemetry'"
    )
    report_cmd.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="how many slowest cells to list (default 5)",
    )

    bench_diff_cmd = subparsers.add_parser(
        "bench-diff",
        help="compare two benchmark-timing JSON files; non-zero exit when a "
        "shared benchmark regressed beyond the threshold",
    )
    bench_diff_cmd.add_argument("old", metavar="OLD.json", help="baseline bench JSON")
    bench_diff_cmd.add_argument("new", metavar="NEW.json", help="candidate bench JSON")
    bench_diff_cmd.add_argument(
        "--threshold",
        type=_nonnegative_float,
        default=None,
        metavar="FRACTION",
        help="allowed mean-time growth before a benchmark counts as regressed "
        "(default 0.5, i.e. 1.5x)",
    )
    bench_diff_cmd.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI advisory mode)",
    )

    lint_cmd = subparsers.add_parser(
        "lint",
        help="statically check the determinism contracts (snapshot completeness, "
        "cache-key hygiene, wall-clock/entropy bans, protocol conformance)",
    )
    lint_cmd.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="source tree to analyze (default: the installed repro package)",
    )
    lint_cmd.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="lint.toml with rule options and justified suppressions "
        "(default: ./lint.toml, then <project>/lint.toml)",
    )
    lint_cmd.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="human table (default) or machine-readable JSON findings",
    )

    axis_help = (
        "pin one grid axis (repeatable); every axis must resolve to a single "
        "value -- tracing explains exactly one cell"
    )
    trace_cmd = subparsers.add_parser(
        "trace",
        help="run one cell with tracing on; export span events and the latency attribution",
    )
    trace_cmd.add_argument(
        "--axis",
        action="append",
        type=_parse_axis,
        default=[],
        metavar="NAME=VALUE",
        help=axis_help,
    )
    trace_cmd.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (e.g. 0.125)",
    )
    trace_cmd.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the trace events as JSON Lines here",
    )
    trace_cmd.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON here (open in chrome://tracing or Perfetto)",
    )

    explain_cmd = subparsers.add_parser(
        "explain",
        help="re-derive the per-layer latency attribution of a (cached) cell",
    )
    explain_cmd.add_argument(
        "--axis",
        action="append",
        type=_parse_axis,
        default=[],
        metavar="NAME=VALUE",
        help=axis_help,
    )
    explain_cmd.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (e.g. 0.125)",
    )
    explain_cmd.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result cache holding the cell (the explained measurement is "
            "checked bit-for-bit against the cached entry; a missing entry "
            "is measured and stored first)"
        ),
    )
    explain_cmd.add_argument(
        "--pack",
        action="append",
        default=[],
        metavar="PACK",
        help="packed result artifact (.frpack) holding the cell; the traced "
        "re-run is verified bit-for-bit against the packed entry (repeatable)",
    )

    for name, needs_fs in (
        ("figure1", True),
        ("figure2", False),
        ("figure3", True),
        ("figure4", True),
        ("zoom", True),
        ("table1", False),
    ):
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        if needs_fs:
            sub.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
        if name == "figure2":
            sub.add_argument(
                "--fs",
                action="append",
                choices=DEFAULT_FS_TYPES,
                help="file systems to compare (repeatable; default the paper's three)",
            )
        if name == "table1":
            sub.add_argument(
                "--measured",
                action="store_true",
                help="also run the measured survey counterpart across the full file-system grid",
            )
            sub.add_argument(
                "--fs",
                action="append",
                choices=DEFAULT_FS_TYPES,
                help="file systems for --measured (repeatable; default all four)",
            )
            sub.add_argument(
                "--quick",
                action="store_true",
                help="smaller filesets and fewer repetitions for --measured",
            )
            sub.add_argument(
                "--scaled-testbed",
                type=_testbed_fraction,
                default=None,
                metavar="FRACTION",
                help="shrink the simulated machine by this factor for --measured",
            )
            sub.add_argument(
                "--workers",
                type=_nonnegative_int,
                default=1,
                metavar="N",
                help="worker processes for --measured (0 = one per CPU; default 1, serial)",
            )
            sub.add_argument(
                "--cache-dir",
                default=None,
                metavar="DIR",
                help="persist --measured cells here and skip them on re-runs (default: no cache)",
            )

    suite = subparsers.add_parser("suite", help="run the multi-dimensional nano-benchmark suite")
    survey = subparsers.add_parser(
        "survey",
        help="measure every evaluation dimension across file systems (Table 1's executable counterpart)",
    )
    for sub in (suite, survey):
        sub.add_argument("--fs", action="append", choices=DEFAULT_FS_TYPES)
        sub.add_argument(
            "--device",
            default=None,
            choices=DEVICE_CHOICES,
            help="device model kind (choices come from DEVICE_REGISTRY; default: the testbed's hdd)",
        )
        sub.add_argument(
            "--scheduler",
            default=None,
            choices=SCHEDULER_CHOICES,
            help="block-layer I/O scheduler (choices come from SCHEDULER_REGISTRY)",
        )
        sub.add_argument(
            "--quick", action="store_true", help="smaller filesets and fewer repetitions"
        )
        sub.add_argument(
            "--scaled-testbed",
            type=_testbed_fraction,
            default=None,
            metavar="FRACTION",
            help="shrink the simulated machine by this factor (e.g. 0.125) for quick runs",
        )
        sub.add_argument(
            "--workers",
            type=_nonnegative_int,
            default=1,
            metavar="N",
            help="worker processes for the repetition fan-out (0 = one per CPU; default 1, serial)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persist measured cells here and skip them on re-runs (default: no cache)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir and measure everything fresh",
        )
        sub.add_argument(
            "--snapshot",
            default=None,
            metavar="PATH",
            help="start every repetition from this aged state snapshot (see the 'age' command)",
        )

    ssd_steady = subparsers.add_parser(
        "ssd-steady",
        help="measure fresh-out-of-box vs preconditioned (steady-state) SSD divergence",
    )
    ssd_steady.add_argument("--fs", default="ext4", choices=DEFAULT_FS_TYPES)
    ssd_steady.add_argument(
        "--workload",
        default="postmark",
        help="workload registry name to measure on both device states",
    )
    ssd_steady.add_argument(
        "--quick", action="store_true", help="shorter protocol and fewer repetitions"
    )
    ssd_steady.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (e.g. 0.125)",
    )
    ssd_steady.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        metavar="N",
        help="worker processes for the repetition fan-out (0 = one per CPU; default 1, serial)",
    )
    ssd_steady.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist measured cells here and skip them on re-runs (default: no cache)",
    )

    scalability = subparsers.add_parser(
        "scalability",
        help="sweep concurrent clients over fresh, aged and steady-SSD stacks",
    )
    scalability.add_argument("--fs", default="ext4", choices=DEFAULT_FS_TYPES)
    scalability.add_argument(
        "--workload",
        default=None,
        help="workload registry name (default: the built-in scale-mix personality)",
    )
    scalability.add_argument(
        "--clients",
        type=_client_counts,
        default=(1, 2, 4),
        metavar="N,N,...",
        help="comma-separated client counts to sweep (default 1,2,4)",
    )
    scalability.add_argument(
        "--quick", action="store_true", help="shorter protocol and CI-sized aging"
    )
    scalability.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (e.g. 0.125)",
    )
    scalability.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        metavar="N",
        help="worker processes for the repetition fan-out (0 = one per CPU; default 1, serial)",
    )
    scalability.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist measured cells here and skip them on re-runs (default: no cache)",
    )
    scalability.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="reuse/write the aged snapshot here (default: a private temp directory)",
    )

    from repro.store.commands import add_store_subparsers

    add_store_subparsers(subparsers)

    age = subparsers.add_parser(
        "age",
        help="age a file system and save the state as a reproducible snapshot",
    )
    age.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
    age.add_argument(
        "--quick", action="store_true", help="small, fast aging profile (CI-sized)"
    )
    age.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="snapshot destination (default: aged-<fs>.snapshot.json)",
    )
    age.add_argument(
        "--seed", type=int, default=777, help="seed of the aging churn (default 777)"
    )
    age.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (affects --compare sizing)",
    )
    age.add_argument(
        "--compare",
        action="store_true",
        help="also run the aged-vs-fresh comparison benchmark and report the delta",
    )
    return parser


def _run_list(args) -> int:
    """The ``list`` subcommand: every name the experiment grid resolves."""
    from repro.experiments import EXPERIMENT_REGISTRY
    from repro.fs.stack import FS_REGISTRY
    from repro.storage.config import DEVICE_REGISTRY
    from repro.storage.device import SCHEDULER_REGISTRY
    from repro.workloads import WORKLOAD_REGISTRY

    testbed = paper_testbed()
    print("File systems (axis 'fs'):")
    for name in FS_REGISTRY:
        print(f"  {name}")
    print()
    print("Workloads (axis 'workload'):")
    for name, factory in WORKLOAD_REGISTRY.items():
        try:
            description = factory(testbed).description
        except Exception as error:  # registry entries are user-extensible
            description = f"(factory failed: {error})"
        print(f"  {name:<20} {description}")
    print()
    print("Devices (axis 'device'):")
    for name in DEVICE_REGISTRY:
        print(f"  {name}")
    print()
    print("I/O schedulers (axis 'scheduler'):")
    for name in SCHEDULER_REGISTRY:
        print(f"  {name}")
    print()
    print("Experiments (subcommands; shims over the Experiment API):")
    for name, (_, description) in EXPERIMENT_REGISTRY.items():
        print(f"  {name:<15} {description}")
    print()
    print(
        "Compose axes freely: fsbench-rocket run --axis fs=ext2,ext4 "
        "--axis workload=postmark --axis seed=0..4 --out results.jsonl"
    )
    return 0


def _run_lint(args) -> int:
    """The ``lint`` subcommand: machine-check the determinism contracts."""
    from pathlib import Path

    import repro
    from repro.lint import LintConfigError, run_lint

    root = Path(args.root) if args.root else Path(repro.__file__).parent
    project_root = root
    for ancestor in (root, *root.resolve().parents):
        if (ancestor / "lint.toml").exists() or (ancestor / ".git").exists():
            project_root = ancestor
            break
    config_path = Path(args.config) if args.config else None
    if config_path is None:
        for candidate in (Path.cwd() / "lint.toml", Path(project_root) / "lint.toml"):
            if candidate.exists():
                config_path = candidate
                break
    try:
        report = run_lint(root, config_path=config_path, project_root=project_root)
    except LintConfigError as error:
        print(f"fsbench-rocket: lint config error: {error}", file=sys.stderr)
        return 2
    print(report.to_json() if args.format == "json" else report.to_table())
    return report.exit_code


def _run_experiment(args) -> int:
    """The ``run`` subcommand: declare a grid, stream progress, emit a frame."""
    axes = {}
    for name, values in args.axis:
        axes.setdefault(name, []).extend(values)
    axes.setdefault("fs", ["ext2"])
    axes.setdefault("workload", ["random-read-cached"])
    testbed = (
        scaled_testbed(args.scaled_testbed)
        if args.scaled_testbed is not None
        else paper_testbed()
    )
    cache_dir = None if args.no_cache else args.cache_dir
    if args.pack:
        # Open each pack once up front so an unreadable or corrupt
        # artifact is a clean usage error, not a mid-run traceback.
        from repro.store.format import StoreError
        from repro.store.reader import PackReader

        try:
            for pack_path in args.pack:
                PackReader(pack_path).close()
        except (StoreError, OSError) as error:
            print(f"fsbench-rocket: error: {error}", file=sys.stderr)
            return 2
    sink = None
    if args.telemetry:
        from repro.obs import TelemetrySink

        sink = TelemetrySink(args.telemetry)
    try:
        experiment = Experiment(
            grid=ParameterGrid(axes),
            name=args.name,
            testbed=testbed,
            n_workers=args.workers,
            cache_dir=cache_dir,
            pack_paths=tuple(args.pack),
            telemetry=sink,
        )
        cells = experiment.cells()
    except (ValueError, TypeError, AttributeError, OSError) as error:
        # Bad axis names/values (including wrongly-typed config overrides,
        # which surface as AttributeError from validate()) and unreadable
        # snapshots are usage errors; fail before any measurement starts.
        if sink is not None:
            sink.close()
        print(f"fsbench-rocket: error: {error}", file=sys.stderr)
        return 2

    import os

    from repro.obs import ProgressReporter

    reporter = ProgressReporter(
        total_units=sum(len(cell.seeds) for cell in cells),
        total_cells=len(cells),
        n_workers=args.workers or (os.cpu_count() or 1),
        sink=sink,
        emit=lambda line: logger.info("%s", line),
    )

    logger.info("%s", experiment.describe())
    try:
        outcome = experiment.run(
            on_unit=reporter.unit_done, on_cell=reporter.cell_done
        )
    finally:
        if sink is not None:
            sink.close()
    print(outcome.render())
    if args.out:
        if args.out.endswith(".csv"):
            outcome.frame.to_csv(args.out)
        else:
            outcome.frame.to_jsonl(args.out)
        print(f"wrote {len(outcome.frame)} records -> {args.out}")
    if sink is not None:
        print(f"wrote {sink.total_events} telemetry events -> {args.telemetry}")
    return 0


def _single_cell(args, name: str):
    """Resolve ``--axis`` flags into exactly one experiment cell.

    Shared by ``trace`` and ``explain``, which attribute one measurement at
    a time; multi-valued axes are a usage error, not an implicit loop.
    """
    axes = {}
    for axis_name, values in args.axis:
        axes.setdefault(axis_name, []).extend(values)
    axes.setdefault("fs", ["ext2"])
    axes.setdefault("workload", ["random-read-cached"])
    testbed = (
        scaled_testbed(args.scaled_testbed)
        if args.scaled_testbed is not None
        else paper_testbed()
    )
    experiment = Experiment(grid=ParameterGrid(axes), name=name, testbed=testbed)
    cells = experiment.cells()
    if len(cells) != 1:
        raise ValueError(
            f"{name} needs exactly one cell, got {len(cells)}; "
            "pin every --axis to a single value"
        )
    return cells[0]


def _run_trace(args) -> int:
    """The ``trace`` subcommand: one traced run, exported events, attribution."""
    import json

    from repro.obs import (
        chrome_trace,
        render_attribution,
        render_client_attribution,
        run_unit_traced,
        write_jsonl,
    )

    try:
        cell = _single_cell(args, "trace")
    except (ValueError, TypeError, AttributeError, OSError) as error:
        print(f"fsbench-rocket: error: {error}", file=sys.stderr)
        return 2
    unit = cell.work_units()[0]
    logger.info("tracing %s (effective seed %d)", cell.label, unit.seed)
    run = run_unit_traced(unit)
    events = run.trace_events or []
    if args.out:
        with open(args.out, "w") as handle:
            count = write_jsonl(events, handle)
        print(f"wrote {count} trace events -> {args.out}")
    if args.chrome:
        with open(args.chrome, "w") as handle:
            json.dump(chrome_trace(events), handle)
        print(f"wrote Chrome trace -> {args.chrome}")
    print(render_attribution(run.attribution, title=f"{cell.label}: latency attribution"))
    per_client = render_client_attribution(run.attribution)
    if per_client:
        print()
        print(per_client)
    return 0


def _run_explain(args) -> int:
    """The ``explain`` subcommand: attribution for a cached cell, verified.

    The cached entry (measured first if absent) is the reference; the cell is
    re-run traced and the two payloads must match bit-for-bit -- the CLI face
    of the non-perturbation guarantee.
    """
    from repro.core.parallel import ResultCache, execute_unit
    from repro.obs import payloads_match, render_attribution, render_client_attribution, run_unit_traced

    try:
        cell = _single_cell(args, "explain")
    except (ValueError, TypeError, AttributeError, OSError) as error:
        print(f"fsbench-rocket: error: {error}", file=sys.stderr)
        return 2
    unit = cell.work_units()[0]
    key = unit.key()
    cache = None
    if args.cache_dir or args.pack:
        from repro.store.format import StoreError

        try:
            cache = ResultCache(args.cache_dir, pack_paths=tuple(args.pack))
        except (StoreError, OSError) as error:
            print(f"fsbench-rocket: error: {error}", file=sys.stderr)
            return 2
    reference = cache.get(key) if cache is not None else None
    if reference is None:
        logger.info("cell %s not cached; measuring the reference now", cell.label)
        reference = execute_unit(unit)
        if cache is not None:
            cache.put(key, reference)
    else:
        logger.info("explaining cached cell %s", cell.label)
    traced = run_unit_traced(unit)
    if not payloads_match(reference, traced):
        print(
            "fsbench-rocket: error: the traced re-run diverged from the "
            "reference measurement (tracing perturbed the run?)",
            file=sys.stderr,
        )
        return 1
    print(
        f"{cell.label}: traced re-run is bit-identical to the reference "
        f"measurement (key {key[:12]}...)"
    )
    print()
    print(render_attribution(traced.attribution, title=f"{cell.label}: latency attribution"))
    per_client = render_client_attribution(traced.attribution)
    if per_client:
        print()
        print(per_client)
    return 0


def _run_report(args) -> int:
    """The ``report`` subcommand: campaign health from a telemetry JSONL."""
    from repro.obs import load_events, render_report

    try:
        events = load_events(args.telemetry)
    except (OSError, ValueError) as error:
        print(f"fsbench-rocket: error: {error}", file=sys.stderr)
        return 2
    if not events:
        print(
            f"fsbench-rocket: error: {args.telemetry}: no telemetry events",
            file=sys.stderr,
        )
        return 2
    print(render_report(events, top=args.top))
    return 0


def _run_bench_diff(args) -> int:
    """The ``bench-diff`` subcommand: the benchmark-regression gate."""
    from repro.obs import diff_files
    from repro.obs.benchdiff import DEFAULT_THRESHOLD

    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    try:
        diff = diff_files(args.old, args.new, threshold=threshold)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"fsbench-rocket: error: {error}", file=sys.stderr)
        return 2
    print(diff.render())
    if diff.exit_code and args.warn_only:
        logger.warning("regressions beyond threshold, but --warn-only requested: exit 0")
        return 0
    return diff.exit_code


def _run_age(args) -> int:
    """The ``age`` subcommand: age, snapshot, optionally compare."""
    from repro.aging import (
        AgingConfig,
        ChurnAger,
        quick_aging_config,
        run_aged_vs_fresh,
        save_snapshot,
        snapshot_stack,
    )
    from repro.fs.stack import build_stack

    testbed = (
        scaled_testbed(args.scaled_testbed)
        if args.scaled_testbed is not None
        else paper_testbed()
    )
    aging = quick_aging_config(seed=args.seed) if args.quick else AgingConfig(seed=args.seed)
    out = args.out if args.out else f"aged-{args.fs}.snapshot.json"

    if args.compare:
        import shutil
        import tempfile

        # The experiment names its snapshots itself; give it a private
        # directory so nothing alongside --out can be clobbered, then move
        # the produced snapshot to the requested destination.
        with tempfile.TemporaryDirectory(prefix="fsbench-age-") as scratch:
            result = run_aged_vs_fresh(
                fs_types=(args.fs,),
                testbed=testbed,
                aging=aging,
                quick=args.quick,
                snapshot_dir=scratch,
            )
            cell = result.cells[args.fs]
            shutil.move(cell.snapshot_path, out)
            cell.snapshot_path = out
        print(cell.aging.render())
        print()
        print(result.render())
        return 0

    stack = build_stack(args.fs, testbed=testbed, seed=aging.seed)
    result = ChurnAger(aging).age(stack)
    snapshot = snapshot_stack(stack)
    save_snapshot(snapshot, out)
    print(result.render())
    print(f"Saved {snapshot.describe()}")
    print(f"  -> {out}")
    print(
        "Replay any benchmark from this exact state with "
        f"'fsbench-rocket suite --fs {args.fs} --snapshot {out}'."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    scale = paper_scale() if args.paper_scale else default_scale()

    if args.command == "list":
        return _run_list(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "run":
        return _run_experiment(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "bench-diff":
        return _run_bench_diff(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "results":
        from repro.store.commands import run_results

        return run_results(args)
    if args.command == "cache":
        from repro.store.commands import run_cache

        return run_cache(args)
    if args.command == "table1":
        measured_fs_types = None
        if not args.measured and (
            args.fs
            or args.quick
            or args.scaled_testbed is not None
            or args.workers != 1
            or args.cache_dir is not None
        ):
            # These flags only configure the measured counterpart; silently
            # ignoring them would look like the measurement ran.
            print(
                "fsbench-rocket: error: --fs/--quick/--scaled-testbed/--workers/"
                "--cache-dir require --measured",
                file=sys.stderr,
            )
            return 2
        if args.measured:
            measured_fs_types = tuple(args.fs) if args.fs else DEFAULT_FS_TYPES
        testbed = (
            scaled_testbed(args.scaled_testbed)
            if args.scaled_testbed is not None
            else None
        )
        print(
            run_table1(
                measured_fs_types=measured_fs_types,
                testbed=testbed,
                quick=args.quick,
                n_workers=args.workers,
                cache_dir=args.cache_dir,
            ).render()
        )
        return 0
    if args.command == "figure1":
        print(run_figure1(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "figure2":
        # Figure 2 reproduces the paper's curve, so its default grid stays
        # the paper's trio; ext4 joins on request via --fs.
        fs_types = tuple(args.fs) if args.fs else ("ext2", "ext3", "xfs")
        print(run_figure2(fs_types=fs_types, scale=scale).render())
        return 0
    if args.command == "figure3":
        print(run_figure3(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "figure4":
        print(run_figure4(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "zoom":
        print(run_transition_zoom(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "age":
        return _run_age(args)
    if args.command == "ssd-steady":
        testbed = (
            scaled_testbed(args.scaled_testbed)
            if args.scaled_testbed is not None
            else paper_testbed()
        )
        try:
            result = run_fresh_vs_steady(
                fs_type=args.fs,
                workload=args.workload,
                testbed=testbed,
                quick=args.quick,
                n_workers=args.workers,
                cache_dir=args.cache_dir,
            )
        except ValueError as error:
            # Unknown workload names are usage errors, not tracebacks.
            print(f"fsbench-rocket: error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        return 0
    if args.command == "scalability":
        testbed = (
            scaled_testbed(args.scaled_testbed)
            if args.scaled_testbed is not None
            else paper_testbed()
        )
        try:
            result = run_scalability(
                fs_type=args.fs,
                workload=args.workload,
                clients=args.clients,
                testbed=testbed,
                quick=args.quick,
                n_workers=args.workers,
                cache_dir=args.cache_dir,
                snapshot_dir=args.snapshot_dir,
            )
        except ValueError as error:
            # Unknown workload names are usage errors, not tracebacks.
            print(f"fsbench-rocket: error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        return 0
    if args.command in ("suite", "survey"):
        fs_types = tuple(args.fs) if args.fs else DEFAULT_FS_TYPES
        testbed = (
            scaled_testbed(args.scaled_testbed)
            if args.scaled_testbed is not None
            else paper_testbed()
        )
        if args.device is not None:
            testbed = replace(testbed, device_kind=args.device)
        if args.scheduler is not None:
            testbed = replace(testbed, io_scheduler=args.scheduler)
        testbed.validate()
        cache_dir = None if args.no_cache else args.cache_dir
        if args.snapshot is not None:
            # Validate the snapshot up front so a bad path or a file-system
            # mismatch is a clean usage error; failures later in the run
            # (cache I/O, worker errors) still propagate with tracebacks.
            from repro.aging.snapshot import load_snapshot_cached

            try:
                snapshot_fs = load_snapshot_cached(args.snapshot).fs_type
            except (OSError, ValueError) as error:
                print(f"fsbench-rocket: error: {error}", file=sys.stderr)
                return 2
            if any(fs != snapshot_fs for fs in fs_types):
                print(
                    f"fsbench-rocket: error: snapshot {args.snapshot} holds "
                    f"{snapshot_fs!r} state; run with --fs {snapshot_fs}",
                    file=sys.stderr,
                )
                return 2
        if args.command == "survey":
            survey = MeasuredSurvey(
                testbed=testbed,
                quick=args.quick,
                n_workers=args.workers,
                cache_dir=cache_dir,
                snapshot_path=args.snapshot,
            )
            print(survey.run(fs_types).render())
            return 0
        suite = NanoBenchmarkSuite(
            testbed=testbed,
            quick=args.quick,
            n_workers=args.workers,
            cache_dir=cache_dir,
            snapshot_path=args.snapshot,
        )
        print(suite_report(suite.run(fs_types)))
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
