"""Command-line interface: regenerate any of the paper's figures or tables.

Examples::

    fsbench-rocket table1
    fsbench-rocket table1 --measured --quick
    fsbench-rocket figure1 --fs ext2
    fsbench-rocket figure2 --paper-scale
    fsbench-rocket suite --quick --fs ext4 --fs xfs
    fsbench-rocket suite --workers 4 --cache-dir ~/.cache/fsbench-rocket
    fsbench-rocket survey --quick --workers 0
    fsbench-rocket age --quick --fs ext4 --out aged-ext4.snapshot.json
    fsbench-rocket age --quick --fs ext4 --compare
    fsbench-rocket suite --quick --fs ext4 --snapshot aged-ext4.snapshot.json

Suite, survey and age default to the full filesystem grid (ext2, ext3,
ext4, xfs where applicable); ``table1 --measured`` appends the measured
survey counterpart to the literature table.

``--workers`` fans the (benchmark x file system x repetition) grid out over
worker processes (``0`` = one per CPU) with bit-identical results;
``--cache-dir`` persists every measured cell so repeated runs only simulate
what has never been measured before (``--no-cache`` overrides it).

``age`` churns a file system into a realistic aged state and saves it as a
deterministic state snapshot; passing that snapshot to ``suite``/``survey``
via ``--snapshot`` measures every dimension from the aged state (the
snapshot fingerprint joins the result-cache key).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.report import suite_report
from repro.core.suite import NanoBenchmarkSuite
from repro.core.survey import MeasuredSurvey
from repro.fs.stack import DEFAULT_FS_TYPES
from repro.experiments import (
    default_scale,
    paper_scale,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
    run_transition_zoom,
)
from repro.storage.config import paper_testbed, scaled_testbed


def _nonnegative_int(value: str) -> int:
    """argparse type for --workers: an int >= 0 (0 = one worker per CPU)."""
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
    return number


def _testbed_fraction(value: str) -> float:
    """argparse type for --scaled-testbed: a fraction in (0, 1]."""
    number = float(value)
    if not (0 < number <= 1):
        raise argparse.ArgumentTypeError("must be a fraction in (0, 1]")
    return number


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="fsbench-rocket",
        description="Reproduce the experiments of 'Benchmarking File System Benchmarking' (HotOS XIII).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full durations and repetition counts (slower)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, needs_fs in (
        ("figure1", True),
        ("figure2", False),
        ("figure3", True),
        ("figure4", True),
        ("zoom", True),
        ("table1", False),
    ):
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        if needs_fs:
            sub.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
        if name == "figure2":
            sub.add_argument(
                "--fs",
                action="append",
                choices=DEFAULT_FS_TYPES,
                help="file systems to compare (repeatable; default the paper's three)",
            )
        if name == "table1":
            sub.add_argument(
                "--measured",
                action="store_true",
                help="also run the measured survey counterpart across the full file-system grid",
            )
            sub.add_argument(
                "--fs",
                action="append",
                choices=DEFAULT_FS_TYPES,
                help="file systems for --measured (repeatable; default all four)",
            )
            sub.add_argument(
                "--quick",
                action="store_true",
                help="smaller filesets and fewer repetitions for --measured",
            )
            sub.add_argument(
                "--scaled-testbed",
                type=_testbed_fraction,
                default=None,
                metavar="FRACTION",
                help="shrink the simulated machine by this factor for --measured",
            )
            sub.add_argument(
                "--workers",
                type=_nonnegative_int,
                default=1,
                metavar="N",
                help="worker processes for --measured (0 = one per CPU; default 1, serial)",
            )
            sub.add_argument(
                "--cache-dir",
                default=None,
                metavar="DIR",
                help="persist --measured cells here and skip them on re-runs (default: no cache)",
            )

    suite = subparsers.add_parser("suite", help="run the multi-dimensional nano-benchmark suite")
    survey = subparsers.add_parser(
        "survey",
        help="measure every evaluation dimension across file systems (Table 1's executable counterpart)",
    )
    for sub in (suite, survey):
        sub.add_argument("--fs", action="append", choices=DEFAULT_FS_TYPES)
        sub.add_argument(
            "--quick", action="store_true", help="smaller filesets and fewer repetitions"
        )
        sub.add_argument(
            "--scaled-testbed",
            type=_testbed_fraction,
            default=None,
            metavar="FRACTION",
            help="shrink the simulated machine by this factor (e.g. 0.125) for quick runs",
        )
        sub.add_argument(
            "--workers",
            type=_nonnegative_int,
            default=1,
            metavar="N",
            help="worker processes for the repetition fan-out (0 = one per CPU; default 1, serial)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persist measured cells here and skip them on re-runs (default: no cache)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir and measure everything fresh",
        )
        sub.add_argument(
            "--snapshot",
            default=None,
            metavar="PATH",
            help="start every repetition from this aged state snapshot (see the 'age' command)",
        )

    age = subparsers.add_parser(
        "age",
        help="age a file system and save the state as a reproducible snapshot",
    )
    age.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
    age.add_argument(
        "--quick", action="store_true", help="small, fast aging profile (CI-sized)"
    )
    age.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="snapshot destination (default: aged-<fs>.snapshot.json)",
    )
    age.add_argument(
        "--seed", type=int, default=777, help="seed of the aging churn (default 777)"
    )
    age.add_argument(
        "--scaled-testbed",
        type=_testbed_fraction,
        default=None,
        metavar="FRACTION",
        help="shrink the simulated machine by this factor (affects --compare sizing)",
    )
    age.add_argument(
        "--compare",
        action="store_true",
        help="also run the aged-vs-fresh comparison benchmark and report the delta",
    )
    return parser


def _run_age(args) -> int:
    """The ``age`` subcommand: age, snapshot, optionally compare."""
    from repro.aging import (
        AgingConfig,
        ChurnAger,
        quick_aging_config,
        run_aged_vs_fresh,
        save_snapshot,
        snapshot_stack,
    )
    from repro.fs.stack import build_stack

    testbed = (
        scaled_testbed(args.scaled_testbed)
        if args.scaled_testbed is not None
        else paper_testbed()
    )
    aging = quick_aging_config(seed=args.seed) if args.quick else AgingConfig(seed=args.seed)
    out = args.out if args.out else f"aged-{args.fs}.snapshot.json"

    if args.compare:
        import shutil
        import tempfile

        # The experiment names its snapshots itself; give it a private
        # directory so nothing alongside --out can be clobbered, then move
        # the produced snapshot to the requested destination.
        with tempfile.TemporaryDirectory(prefix="fsbench-age-") as scratch:
            result = run_aged_vs_fresh(
                fs_types=(args.fs,),
                testbed=testbed,
                aging=aging,
                quick=args.quick,
                snapshot_dir=scratch,
            )
            cell = result.cells[args.fs]
            shutil.move(cell.snapshot_path, out)
            cell.snapshot_path = out
        print(cell.aging.render())
        print()
        print(result.render())
        return 0

    stack = build_stack(args.fs, testbed=testbed, seed=aging.seed)
    result = ChurnAger(aging).age(stack)
    snapshot = snapshot_stack(stack)
    save_snapshot(snapshot, out)
    print(result.render())
    print(f"Saved {snapshot.describe()}")
    print(f"  -> {out}")
    print(
        "Replay any benchmark from this exact state with "
        f"'fsbench-rocket suite --fs {args.fs} --snapshot {out}'."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    scale = paper_scale() if args.paper_scale else default_scale()

    if args.command == "table1":
        measured_fs_types = None
        if not args.measured and (
            args.fs
            or args.quick
            or args.scaled_testbed is not None
            or args.workers != 1
            or args.cache_dir is not None
        ):
            # These flags only configure the measured counterpart; silently
            # ignoring them would look like the measurement ran.
            print(
                "fsbench-rocket: error: --fs/--quick/--scaled-testbed/--workers/"
                "--cache-dir require --measured",
                file=sys.stderr,
            )
            return 2
        if args.measured:
            measured_fs_types = tuple(args.fs) if args.fs else DEFAULT_FS_TYPES
        testbed = (
            scaled_testbed(args.scaled_testbed)
            if args.scaled_testbed is not None
            else None
        )
        print(
            run_table1(
                measured_fs_types=measured_fs_types,
                testbed=testbed,
                quick=args.quick,
                n_workers=args.workers,
                cache_dir=args.cache_dir,
            ).render()
        )
        return 0
    if args.command == "figure1":
        print(run_figure1(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "figure2":
        # Figure 2 reproduces the paper's curve, so its default grid stays
        # the paper's trio; ext4 joins on request via --fs.
        fs_types = tuple(args.fs) if args.fs else ("ext2", "ext3", "xfs")
        print(run_figure2(fs_types=fs_types, scale=scale).render())
        return 0
    if args.command == "figure3":
        print(run_figure3(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "figure4":
        print(run_figure4(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "zoom":
        print(run_transition_zoom(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "age":
        return _run_age(args)
    if args.command in ("suite", "survey"):
        fs_types = tuple(args.fs) if args.fs else DEFAULT_FS_TYPES
        testbed = (
            scaled_testbed(args.scaled_testbed)
            if args.scaled_testbed is not None
            else paper_testbed()
        )
        cache_dir = None if args.no_cache else args.cache_dir
        if args.snapshot is not None:
            # Validate the snapshot up front so a bad path or a file-system
            # mismatch is a clean usage error; failures later in the run
            # (cache I/O, worker errors) still propagate with tracebacks.
            from repro.aging.snapshot import load_snapshot_cached

            try:
                snapshot_fs = load_snapshot_cached(args.snapshot).fs_type
            except (OSError, ValueError) as error:
                print(f"fsbench-rocket: error: {error}", file=sys.stderr)
                return 2
            if any(fs != snapshot_fs for fs in fs_types):
                print(
                    f"fsbench-rocket: error: snapshot {args.snapshot} holds "
                    f"{snapshot_fs!r} state; run with --fs {snapshot_fs}",
                    file=sys.stderr,
                )
                return 2
        if args.command == "survey":
            survey = MeasuredSurvey(
                testbed=testbed,
                quick=args.quick,
                n_workers=args.workers,
                cache_dir=cache_dir,
                snapshot_path=args.snapshot,
            )
            print(survey.run(fs_types).render())
            return 0
        suite = NanoBenchmarkSuite(
            testbed=testbed,
            quick=args.quick,
            n_workers=args.workers,
            cache_dir=cache_dir,
            snapshot_path=args.snapshot,
        )
        print(suite_report(suite.run(fs_types)))
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
