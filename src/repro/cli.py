"""Command-line interface: regenerate any of the paper's figures or tables.

Examples::

    fsbench-rocket table1
    fsbench-rocket figure1 --fs ext2
    fsbench-rocket figure2 --paper-scale
    fsbench-rocket suite --quick --fs ext2 --fs xfs
    fsbench-rocket suite --workers 4 --cache-dir ~/.cache/fsbench-rocket
    fsbench-rocket survey --quick --workers 0

``--workers`` fans the (benchmark x file system x repetition) grid out over
worker processes (``0`` = one per CPU) with bit-identical results;
``--cache-dir`` persists every measured cell so repeated runs only simulate
what has never been measured before (``--no-cache`` overrides it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.report import suite_report
from repro.core.suite import NanoBenchmarkSuite
from repro.core.survey import MeasuredSurvey
from repro.experiments import (
    default_scale,
    paper_scale,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
    run_transition_zoom,
)
from repro.storage.config import paper_testbed, scaled_testbed


def _nonnegative_int(value: str) -> int:
    """argparse type for --workers: an int >= 0 (0 = one worker per CPU)."""
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fsbench-rocket",
        description="Reproduce the experiments of 'Benchmarking File System Benchmarking' (HotOS XIII).",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full durations and repetition counts (slower)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, needs_fs in (
        ("figure1", True),
        ("figure2", False),
        ("figure3", True),
        ("figure4", True),
        ("zoom", True),
        ("table1", False),
    ):
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        if needs_fs:
            sub.add_argument("--fs", default="ext2", choices=("ext2", "ext3", "xfs"))
        if name == "figure2":
            sub.add_argument(
                "--fs",
                action="append",
                choices=("ext2", "ext3", "xfs"),
                help="file systems to compare (repeatable; default all three)",
            )

    suite = subparsers.add_parser("suite", help="run the multi-dimensional nano-benchmark suite")
    survey = subparsers.add_parser(
        "survey",
        help="measure every evaluation dimension across file systems (Table 1's executable counterpart)",
    )
    for sub in (suite, survey):
        sub.add_argument("--fs", action="append", choices=("ext2", "ext3", "xfs"))
        sub.add_argument(
            "--quick", action="store_true", help="smaller filesets and fewer repetitions"
        )
        sub.add_argument(
            "--scaled-testbed",
            type=float,
            default=None,
            metavar="FRACTION",
            help="shrink the simulated machine by this factor (e.g. 0.125) for quick runs",
        )
        sub.add_argument(
            "--workers",
            type=_nonnegative_int,
            default=1,
            metavar="N",
            help="worker processes for the repetition fan-out (0 = one per CPU; default 1, serial)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persist measured cells here and skip them on re-runs (default: no cache)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir and measure everything fresh",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    scale = paper_scale() if args.paper_scale else default_scale()

    if args.command == "table1":
        print(run_table1().render())
        return 0
    if args.command == "figure1":
        print(run_figure1(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "figure2":
        fs_types = tuple(args.fs) if args.fs else ("ext2", "ext3", "xfs")
        print(run_figure2(fs_types=fs_types, scale=scale).render())
        return 0
    if args.command == "figure3":
        print(run_figure3(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "figure4":
        print(run_figure4(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command == "zoom":
        print(run_transition_zoom(fs_type=args.fs, scale=scale).render())
        return 0
    if args.command in ("suite", "survey"):
        fs_types = tuple(args.fs) if args.fs else ("ext2", "ext3", "xfs")
        testbed = (
            scaled_testbed(args.scaled_testbed) if args.scaled_testbed else paper_testbed()
        )
        cache_dir = None if args.no_cache else args.cache_dir
        if args.command == "survey":
            survey = MeasuredSurvey(
                testbed=testbed, quick=args.quick, n_workers=args.workers, cache_dir=cache_dir
            )
            print(survey.run(fs_types).render())
            return 0
        suite = NanoBenchmarkSuite(
            testbed=testbed, quick=args.quick, n_workers=args.workers, cache_dir=cache_dir
        )
        print(suite_report(suite.run(fs_types)))
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
