"""The benchmark-usage survey behind Table 1, and its measured counterpart.

The paper surveyed 100 file system papers from FAST, OSDI, ATC, HotStorage,
SOSP and MSST (2009--2010), recorded which benchmarks each used, and combined
the counts with the earlier nine-year study by Traeger et al. (1999--2007).
Table 1 lists each benchmark, which dimensions it can evaluate (and whether it
isolates them), and how often it was used in each period.

This module ships that survey as structured data plus the aggregation engine
that regenerates the table and its headline statistics (the dominance of
ad-hoc benchmarks, the lack of overlap between papers), and lets users extend
the database with new survey years.

It also ships :class:`MeasuredSurvey`, the *executable* complement of the
literature survey: for every dimension the paper says an evaluation must
cover, it runs the nano-benchmark suite's isolating components across file
systems and reports measured ranges next to the usage statistics.  The
(dimension x file system x repetition) grid is embarrassingly parallel and
dispatches through :mod:`repro.core.parallel`, so surveys scale out over
worker processes and re-runs are served from the persistent result cache.

Reconstruction note: the usage counts and row set are taken verbatim from the
paper.  The per-dimension symbols were reconstructed from the paper's text
table, whose column alignment is ambiguous for a few rows; those cells are the
most defensible reading of the original and are marked ``reconstructed=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.dimensions import Coverage, Dimension, DimensionVector
from repro.core.frame import ResultFrame
from repro.core.parallel import ParallelExecutor
from repro.core.suite import NanoBenchmarkSuite, SuiteResult
from repro.fs.stack import DEFAULT_FS_TYPES
from repro.storage.config import TestbedConfig


@dataclass
class BenchmarkEntry:
    """One row of the survey: a benchmark, its coverage and its usage counts."""

    name: str
    coverage: DimensionVector
    uses_1999_2007: int = 0
    uses_2009_2010: int = 0
    category: str = "standard"  # standard | compile | trace | adhoc | production
    reconstructed: bool = False
    notes: str = ""

    @property
    def total_uses(self) -> int:
        """Total recorded uses across both survey periods."""
        return self.uses_1999_2007 + self.uses_2009_2010


def _vector(isolates: Sequence[str] = (), exercises: Sequence[str] = (), trace: Sequence[str] = ()) -> DimensionVector:
    return DimensionVector.of(
        isolates=[Dimension(d) for d in isolates],
        exercises=[Dimension(d) for d in exercises],
        trace=[Dimension(d) for d in trace],
    )


def load_paper_survey() -> "SurveyDatabase":
    """The survey data of Table 1, as published."""
    entries = [
        BenchmarkEntry(
            name="IOmeter",
            coverage=_vector(isolates=["io"]),
            uses_1999_2007=2,
            uses_2009_2010=3,
        ),
        BenchmarkEntry(
            name="Filebench",
            coverage=_vector(isolates=["io", "scaling"], exercises=["ondisk", "caching", "metadata"]),
            uses_1999_2007=3,
            uses_2009_2010=5,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="IOzone",
            coverage=_vector(isolates=["caching"], exercises=["io", "ondisk"]),
            uses_1999_2007=0,
            uses_2009_2010=4,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="Bonnie/Bonnie64/Bonnie++",
            coverage=_vector(exercises=["io", "ondisk"]),
            uses_1999_2007=2,
            uses_2009_2010=0,
            notes="Can measure either I/O or on-disk performance depending on configuration.",
        ),
        BenchmarkEntry(
            name="Postmark",
            coverage=_vector(isolates=["metadata"], exercises=["io", "ondisk", "caching"]),
            uses_1999_2007=30,
            uses_2009_2010=17,
            reconstructed=True,
            notes="Designed around meta-data operations but does not isolate them (Section 2).",
        ),
        BenchmarkEntry(
            name="Linux compile",
            coverage=_vector(exercises=["caching", "metadata", "scaling"]),
            uses_1999_2007=6,
            uses_2009_2010=3,
            category="compile",
            reconstructed=True,
            notes="CPU bound on modern systems; reveals little about the file system.",
        ),
        BenchmarkEntry(
            name="Compile (Apache, openssh, etc.)",
            coverage=_vector(exercises=["caching", "metadata", "scaling"]),
            uses_1999_2007=38,
            uses_2009_2010=14,
            category="compile",
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="DBench",
            coverage=_vector(exercises=["caching", "metadata", "scaling"]),
            uses_1999_2007=1,
            uses_2009_2010=1,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="SPECsfs",
            coverage=_vector(isolates=["scaling"], exercises=["ondisk", "caching", "metadata"]),
            uses_1999_2007=7,
            uses_2009_2010=1,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="Sort",
            coverage=_vector(isolates=["scaling"], exercises=["ondisk", "caching"]),
            uses_1999_2007=0,
            uses_2009_2010=5,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="IOR: I/O Performance Benchmark",
            coverage=_vector(isolates=["scaling"], exercises=["io", "ondisk"]),
            uses_1999_2007=0,
            uses_2009_2010=1,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="Production workloads",
            coverage=_vector(trace=["ondisk", "caching", "metadata", "scaling"]),
            uses_1999_2007=2,
            uses_2009_2010=2,
            category="production",
        ),
        BenchmarkEntry(
            name="Ad-hoc",
            coverage=_vector(trace=["io", "ondisk", "caching", "metadata", "scaling"]),
            uses_1999_2007=237,
            uses_2009_2010=67,
            category="adhoc",
            notes="Custom benchmarks written for a single paper; by far the most common choice.",
        ),
        BenchmarkEntry(
            name="Trace-based custom",
            coverage=_vector(trace=["ondisk", "caching", "metadata", "scaling"]),
            uses_1999_2007=7,
            uses_2009_2010=18,
            category="trace",
        ),
        BenchmarkEntry(
            name="Trace-based standard",
            coverage=_vector(trace=["ondisk", "caching", "metadata", "scaling"]),
            uses_1999_2007=14,
            uses_2009_2010=17,
            category="trace",
            notes="Only 2 of the 14 'standard' traces are widely available (Harvard, NetApp CIFS).",
        ),
        BenchmarkEntry(
            name="BLAST",
            coverage=_vector(exercises=["ondisk", "caching"]),
            uses_1999_2007=0,
            uses_2009_2010=2,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="Flexible FS Benchmark (FFSB)",
            coverage=_vector(isolates=["scaling"], exercises=["ondisk", "caching", "metadata"]),
            uses_1999_2007=0,
            uses_2009_2010=1,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="Flexible I/O tester (fio)",
            coverage=_vector(isolates=["io"], exercises=["ondisk", "caching", "scaling"]),
            uses_1999_2007=0,
            uses_2009_2010=1,
            reconstructed=True,
        ),
        BenchmarkEntry(
            name="Andrew",
            coverage=_vector(exercises=["caching", "metadata", "scaling"]),
            uses_1999_2007=15,
            uses_2009_2010=1,
            notes="Originally designed to study scaling; now cited as a general FS benchmark.",
        ),
    ]
    database = SurveyDatabase()
    for entry in entries:
        database.add(entry)
    return database


#: Papers surveyed by the authors for the 2009-2010 columns.
PAPERS_SURVEYED_2009_2010 = 100
PAPERS_WITH_EVALUATION_2009_2010 = 87
PAPERS_FROM_2010 = 68
PAPERS_FROM_2009 = 32


class SurveyDatabase:
    """A collection of survey rows with Table-1 style aggregation."""

    def __init__(self) -> None:
        self._entries: Dict[str, BenchmarkEntry] = {}

    # --------------------------------------------------------------- content
    def add(self, entry: BenchmarkEntry) -> None:
        """Add (or replace) a benchmark row."""
        self._entries[entry.name] = entry

    def record_use(self, name: str, period: str = "2009_2010", count: int = 1) -> None:
        """Record additional observed uses of a benchmark (extending the survey).

        Unknown benchmarks are added with empty coverage so that new survey
        passes can start from the usage data and fill in coverage later.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        entry = self._entries.get(name)
        if entry is None:
            entry = BenchmarkEntry(name=name, coverage=DimensionVector())
            self._entries[name] = entry
        if period == "2009_2010":
            entry.uses_2009_2010 += count
        elif period == "1999_2007":
            entry.uses_1999_2007 += count
        else:
            raise ValueError(f"unknown survey period: {period!r}")

    def get(self, name: str) -> BenchmarkEntry:
        """Return one row; raises ``KeyError`` for unknown benchmarks."""
        return self._entries[name]

    def entries(self) -> List[BenchmarkEntry]:
        """All rows, most-used first (total uses, then name)."""
        return sorted(self._entries.values(), key=lambda e: (-e.total_uses, e.name))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------ aggregates
    def total_uses(self, period: Optional[str] = None) -> int:
        """Total benchmark uses in one period (or both when ``period`` is None)."""
        if period == "1999_2007":
            return sum(e.uses_1999_2007 for e in self._entries.values())
        if period == "2009_2010":
            return sum(e.uses_2009_2010 for e in self._entries.values())
        return sum(e.total_uses for e in self._entries.values())

    def adhoc_fraction(self, period: str = "2009_2010") -> float:
        """Fraction of uses that are ad-hoc benchmarks (the paper's headline complaint)."""
        total = self.total_uses(period)
        if total == 0:
            return 0.0
        adhoc = sum(
            (e.uses_2009_2010 if period == "2009_2010" else e.uses_1999_2007)
            for e in self._entries.values()
            if e.category == "adhoc"
        )
        return adhoc / total

    def isolating_benchmarks(self, dimension: Dimension) -> List[str]:
        """Benchmarks that isolate a given dimension."""
        return [e.name for e in self.entries() if e.coverage.isolates(dimension)]

    def coverage_matrix(self) -> Dict[str, Dict[Dimension, Coverage]]:
        """benchmark -> dimension -> coverage mapping (for programmatic use)."""
        return {e.name: {d: e.coverage[d] for d in Dimension.ordered()} for e in self.entries()}

    def dimension_use_counts(self, period: str = "2009_2010") -> Dict[Dimension, int]:
        """How many benchmark uses touched each dimension (at any coverage level)."""
        counts = {dimension: 0 for dimension in Dimension.ordered()}
        for entry in self._entries.values():
            uses = entry.uses_2009_2010 if period == "2009_2010" else entry.uses_1999_2007
            for dimension in Dimension.ordered():
                if entry.coverage.covers(dimension):
                    counts[dimension] += uses
        return counts

    # -------------------------------------------------------------- rendering
    def to_frame(self) -> ResultFrame:
        """The survey as a tidy frame: one row per benchmark per column.

        Coverage symbols and usage counts share the ``metric``/``value``
        shape, so the whole of Table 1 is one
        :meth:`~repro.core.frame.ResultFrame.pivot` away.
        """
        frame = ResultFrame()
        for entry in self.entries():
            symbols = entry.coverage.row_symbols()
            for dimension, symbol in zip(Dimension.ordered(), symbols):
                frame.append(
                    {"benchmark": entry.name, "metric": dimension.title, "value": symbol}
                )
            frame.append(
                {"benchmark": entry.name, "metric": "1999-2007", "value": entry.uses_1999_2007}
            )
            frame.append(
                {"benchmark": entry.name, "metric": "2009-2010", "value": entry.uses_2009_2010}
            )
        return frame

    def render_table1(self) -> str:
        """Regenerate Table 1 as plain text (legend matches the paper)."""
        table = self.to_frame().pivot(
            index="benchmark", columns="metric", aggregate="first"
        ).render(index_headers=["Benchmark"])
        legend = (
            "\nLegend: '*' = evaluates and isolates the dimension; "
            "'o' = exercises it without isolating it; "
            "'#' = coverage depends on the trace / production workload."
        )
        summary = (
            f"\nTotal uses: {self.total_uses('1999_2007')} (1999-2007), "
            f"{self.total_uses('2009_2010')} (2009-2010); "
            f"ad-hoc benchmarks account for {100 * self.adhoc_fraction('2009_2010'):.0f}% "
            "of 2009-2010 uses."
        )
        return table + legend + summary


# ------------------------------------------------------------ measured survey
@dataclass
class MeasuredSurveyResult:
    """Outcome of a :class:`MeasuredSurvey` run.

    Pairs the literature survey (who isolates which dimension, how often the
    dimension was exercised in published evaluations) with actual
    measurements of every dimension's isolating nano-benchmarks.
    """

    database: SurveyDatabase
    suite_result: SuiteResult

    def dimensions(self) -> List[Dimension]:
        """Dimensions with at least one measured benchmark, in canonical order."""
        grouped = self.suite_result.by_dimension()
        return [dimension for dimension in Dimension.ordered() if dimension in grouped]

    def benchmarks_for(self, dimension: Dimension) -> List[str]:
        """Measured benchmark names whose primary dimension is ``dimension``."""
        return self.suite_result.by_dimension().get(dimension, [])

    def to_frame(self) -> ResultFrame:
        """The measured cells as a tidy frame (one row per benchmark x fs).

        Cells carry the pre-formatted ``mean +/- relative stddev`` strings
        (ranges, never single numbers, per the paper) plus the dimension for
        grouping.
        """
        frame = ResultFrame()
        fs_names = self.suite_result.filesystems()
        for dimension in self.dimensions():
            for name in self.benchmarks_for(dimension):
                for fs_name in fs_names:
                    summary = self.suite_result.result_for(name, fs_name).throughput_summary()
                    frame.append(
                        {
                            "dimension": dimension.title,
                            "benchmark": name,
                            "fs": fs_name,
                            "value": (
                                f"{summary.mean:.0f} "
                                f"+/-{summary.relative_stddev_percent:.0f}%"
                            ),
                        }
                    )
        return frame

    def render(self) -> str:
        """Per-dimension report: survey context plus measured ranges.

        Each dimension's table is a pivot of :meth:`to_frame` -- the shared
        frame renderer, not bespoke table code.
        """
        lines: List[str] = ["Measured dimension survey", "========================="]
        use_counts = self.database.dimension_use_counts()
        frame = self.to_frame()
        for dimension in self.dimensions():
            isolating = self.database.isolating_benchmarks(dimension)
            lines.append("")
            lines.append(f"[{dimension.title}]")
            lines.append(
                f"  2009-2010 benchmark uses touching this dimension: {use_counts[dimension]}"
            )
            lines.append(
                "  published benchmarks isolating it: "
                + (", ".join(isolating) if isolating else "(none)")
            )
            lines.append(
                frame.filter(dimension=dimension.title)
                .pivot(index="benchmark", columns="fs", aggregate="first")
                .render(
                    index_headers=["Nano-benchmark"],
                    column_header=lambda fs: f"{fs} (ops/s)",
                )
            )
        return "\n".join(lines)


class MeasuredSurvey:
    """Execute the survey the paper wishes the community ran.

    Where :class:`SurveyDatabase` records which dimensions published papers
    *claimed* to evaluate, ``MeasuredSurvey`` actually evaluates each
    dimension: it runs the nano-benchmark suite (whose components isolate one
    dimension apiece) across file systems, many repetitions per cell, under
    the controlled-cache-state, deliberate-noise protocol.

    Parameters
    ----------
    database:
        Literature survey providing the per-dimension context (defaults to
        the paper's Table 1 data).
    testbed, quick:
        Machine to simulate and whether to use shortened protocols.
    n_workers:
        Worker processes for the parallel fan-out (``1`` = serial in-process,
        ``None``/``0`` = one per CPU).  Any worker count produces
        bit-identical results.
    cache_dir:
        Persistent result-cache directory; re-running a survey skips every
        already-measured (benchmark, file system, repetition) cell.
        ``None`` disables caching.
    snapshot_path:
        The aging axis: measure every dimension starting from the aged state
        in this :class:`~repro.aging.snapshot.StateSnapshot` file instead of
        a fresh file system (the snapshot fingerprint joins the cache key).
    """

    def __init__(
        self,
        database: Optional[SurveyDatabase] = None,
        testbed: Optional[TestbedConfig] = None,
        quick: bool = False,
        n_workers: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        snapshot_path: Optional[str] = None,
    ) -> None:
        self.database = database if database is not None else load_paper_survey()
        self.suite = NanoBenchmarkSuite(
            testbed=testbed,
            quick=quick,
            n_workers=n_workers,
            cache_dir=cache_dir,
            snapshot_path=snapshot_path,
        )

    def run(
        self,
        fs_types: Sequence[str] = DEFAULT_FS_TYPES,
        executor: Optional[ParallelExecutor] = None,
    ) -> MeasuredSurveyResult:
        """Measure every dimension on every file system.

        ``executor`` overrides the survey's own executor, letting callers
        share a worker pool and cache across several surveys.
        """
        suite_result = self.suite.run(fs_types, executor=executor)
        return MeasuredSurveyResult(database=self.database, suite_result=suite_result)
