"""Log2-bucket latency histograms.

Section 3.2 of the paper modifies Filebench to collect latency histograms
(after Joukov et al., OSDI 2006) because "average latency is not a good metric
to evaluate user satisfaction".  The histograms in Figures 3 and 4 use log2
nanosecond buckets on the X axis (bucket *n* covers latencies in
``[2^n, 2^(n+1))`` ns) and the percentage of operations on the Y axis.

:class:`LatencyHistogram` is that data structure, with the operations the
reporting and analysis layers need: merging, normalisation, percentiles, mode
(peak) detection and ASCII rendering.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

#: Default number of log2 buckets: covers [1 ns, ~17.6 minutes).
DEFAULT_BUCKETS = 40


def bucket_of(latency_ns: float) -> int:
    """Bucket index for a latency: ``floor(log2(latency_ns))``, clamped at 0."""
    if latency_ns < 1.0:
        return 0
    return int(latency_ns).bit_length() - 1


def bucket_label(index: int) -> str:
    """Human-readable lower bound of a bucket (``"4us"``, ``"17ms"``, ...)."""
    low = 2 ** index
    if low < 1_000:
        return f"{low}ns"
    if low < 1_000_000:
        return f"{low / 1_000:.0f}us"
    if low < 1_000_000_000:
        return f"{low / 1_000_000:.0f}ms"
    return f"{low / 1_000_000_000:.1f}s"


class LatencyHistogram:
    """A histogram of operation latencies over log2 nanosecond buckets."""

    __slots__ = ("counts", "total", "sum_ns", "min_ns", "max_ns")

    def __init__(self, buckets: int = DEFAULT_BUCKETS) -> None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.counts = [0] * buckets
        self.total = 0
        self.sum_ns = 0.0
        self.min_ns = math.inf
        self.max_ns = 0.0

    # --------------------------------------------------------------- filling
    def add(self, latency_ns: float) -> None:
        """Record one latency sample."""
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        index = bucket_of(latency_ns)
        if index >= len(self.counts):
            index = len(self.counts) - 1
        self.counts[index] += 1
        self.total += 1
        self.sum_ns += latency_ns
        if latency_ns < self.min_ns:
            self.min_ns = latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns

    def add_many(self, latencies_ns: Iterable[float]) -> None:
        """Record many latency samples."""
        for latency in latencies_ns:
            self.add(latency)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Return a new histogram combining this one and ``other``."""
        size = max(len(self.counts), len(other.counts))
        merged = LatencyHistogram(size)
        for index, count in enumerate(self.counts):
            merged.counts[index] += count
        for index, count in enumerate(other.counts):
            merged.counts[index] += count
        merged.total = self.total + other.total
        merged.sum_ns = self.sum_ns + other.sum_ns
        merged.min_ns = min(self.min_ns, other.min_ns)
        merged.max_ns = max(self.max_ns, other.max_ns)
        return merged

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.counts)

    @property
    def is_empty(self) -> bool:
        """True when no samples have been recorded."""
        return self.total == 0

    def mean_ns(self) -> float:
        """Exact mean of the recorded samples (not bucket-approximated)."""
        return self.sum_ns / self.total if self.total else 0.0

    def percentages(self) -> List[float]:
        """Per-bucket percentage of operations (the Y axis of Figure 3)."""
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [100.0 * count / self.total for count in self.counts]

    def fractions(self) -> List[float]:
        """Per-bucket fraction of operations."""
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [count / self.total for count in self.counts]

    def percentile(self, p: float) -> float:
        """Approximate percentile latency (ns), using bucket midpoints.

        ``p`` is in ``[0, 100]``.  Returns 0 for an empty histogram.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError("p must be in [0, 100]")
        if self.total == 0:
            return 0.0
        target = self.total * p / 100.0
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target and count > 0:
                low = 2.0 ** index
                high = 2.0 ** (index + 1)
                # Interpolate inside the bucket.
                into = (target - (running - count)) / count
                return low + (high - low) * max(0.0, min(1.0, into))
        return self.max_ns

    def median_ns(self) -> float:
        """Approximate median latency."""
        return self.percentile(50.0)

    def nonzero_range(self) -> Tuple[int, int]:
        """(first, last) bucket indices holding samples; (0, 0) when empty."""
        first = last = 0
        seen = False
        for index, count in enumerate(self.counts):
            if count:
                if not seen:
                    first = index
                    seen = True
                last = index
        return (first, last) if seen else (0, 0)

    def span_orders_of_magnitude(self) -> float:
        """How many orders of magnitude (base 10) the recorded latencies span."""
        if self.total == 0 or self.min_ns <= 0:
            return 0.0
        return math.log10(self.max_ns / self.min_ns) if self.max_ns > self.min_ns else 0.0

    # ----------------------------------------------------------------- modes
    def modes(self, min_fraction: float = 0.05, min_separation: int = 2) -> List[int]:
        """Indices of local peaks holding at least ``min_fraction`` of samples.

        Two peaks closer than ``min_separation`` buckets are merged (the
        taller one wins).  This is how the analysis layer decides whether a
        latency distribution is uni- or bi-modal (Figure 3's reading).
        """
        if not (0.0 < min_fraction < 1.0):
            raise ValueError("min_fraction must be in (0, 1)")
        fractions = self.fractions()
        peaks: List[int] = []
        for index, value in enumerate(fractions):
            if value < min_fraction:
                continue
            left = fractions[index - 1] if index > 0 else 0.0
            right = fractions[index + 1] if index + 1 < len(fractions) else 0.0
            if value >= left and value >= right:
                peaks.append(index)
        # Collapse plateaus / near-adjacent peaks.
        merged: List[int] = []
        for peak in peaks:
            if merged and peak - merged[-1] < min_separation:
                if fractions[peak] > fractions[merged[-1]]:
                    merged[-1] = peak
            else:
                merged.append(peak)
        return merged

    def is_bimodal(self, min_fraction: float = 0.05) -> bool:
        """True when at least two well-separated peaks exist."""
        return len(self.modes(min_fraction=min_fraction)) >= 2

    # ------------------------------------------------------------- rendering
    def to_ascii(self, width: int = 50, min_bucket: Optional[int] = None, max_bucket: Optional[int] = None) -> str:
        """Render the histogram as rows of ``label | bar | percent``."""
        first, last = self.nonzero_range()
        lo = first if min_bucket is None else min_bucket
        hi = last if max_bucket is None else max_bucket
        percentages = self.percentages()
        peak = max(percentages[lo : hi + 1], default=0.0) or 1.0
        lines = []
        for index in range(lo, hi + 1):
            pct = percentages[index]
            bar = "#" * int(round(width * pct / peak))
            lines.append(f"{index:>3} {bucket_label(index):>7} |{bar:<{width}}| {pct:5.1f}%")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(n={self.total}, mean={self.mean_ns():.0f}ns, "
            f"modes={self.modes() if self.total else []})"
        )


def from_latencies(latencies_ns: Sequence[float], buckets: int = DEFAULT_BUCKETS) -> LatencyHistogram:
    """Convenience constructor: build a histogram from a latency list."""
    histogram = LatencyHistogram(buckets)
    histogram.add_many(latencies_ns)
    return histogram
