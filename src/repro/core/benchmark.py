"""Nano-benchmark abstraction.

A :class:`NanoBenchmark` binds together the three things the paper says a
benchmark must make explicit: *what workload* runs, *which dimension(s)* it
claims to measure (and whether it isolates them), and *under what measurement
protocol* it is valid.  The suite in :mod:`repro.core.suite` composes these
into the multi-dimensional evaluation the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.dimensions import Dimension, DimensionVector
from repro.core.results import RepetitionSet
from repro.core.runner import BenchmarkConfig, BenchmarkRunner
from repro.storage.config import TestbedConfig
from repro.workloads.spec import WorkloadSpec


@dataclass
class NanoBenchmark:
    """One nano-benchmark: a workload, its dimension claim and its protocol.

    Attributes
    ----------
    name:
        Identifier used in reports.
    description:
        What the benchmark measures, in one sentence.
    workload_factory:
        Zero-argument callable producing a fresh :class:`WorkloadSpec`;
        a factory (rather than a spec instance) so every run starts from an
        unmutated fileset description.
    dimensions:
        The dimension-coverage vector the benchmark claims.
    config:
        The measurement protocol appropriate for this benchmark (e.g. a
        cold-cache protocol for on-disk benchmarks, a pre-warmed protocol for
        in-memory benchmarks).  ``None`` means "use the runner's default".
    """

    name: str
    description: str
    workload_factory: Callable[[], WorkloadSpec]
    dimensions: DimensionVector = field(default_factory=DimensionVector)
    config: Optional[BenchmarkConfig] = None

    def build_workload(self) -> WorkloadSpec:
        """Create a fresh workload spec for one run."""
        return self.workload_factory()

    def primary_dimension(self) -> Optional[Dimension]:
        """The first isolated dimension, or the first covered one, or None."""
        for dimension in Dimension.ordered():
            if self.dimensions.isolates(dimension):
                return dimension
        covered = self.dimensions.covered_dimensions()
        return covered[0] if covered else None

    def run(
        self,
        fs_type: str,
        testbed: Optional[TestbedConfig] = None,
        config: Optional[BenchmarkConfig] = None,
    ) -> RepetitionSet:
        """Run this nano-benchmark against one file system.

        ``config`` overrides the benchmark's own protocol when given (used by
        quick-look runs and by tests).
        """
        effective = config or self.config or BenchmarkConfig()
        runner = BenchmarkRunner(fs_type=fs_type, testbed=testbed, config=effective)
        return runner.run(self.build_workload(), label=f"{self.name}@{fs_type}")

    def describe(self) -> str:
        """One-line description including the dimension claim."""
        return f"{self.name}: {self.description} [{self.dimensions.describe()}]"
