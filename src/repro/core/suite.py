"""The multi-dimensional nano-benchmark suite.

Section 4 of the paper: "We propose that at a minimum, an encompassing
benchmark should include in-memory, disk layout, cache warm-up/eviction, and
meta-data operations performance evaluation components."  :func:`default_suite`
is that minimum suite (plus an I/O-dimension device characterisation and a
scaling component), and :class:`NanoBenchmarkSuite` runs it across file
systems and reports per-dimension results -- as ranges and distributions, not
single numbers.  The (benchmark x file system x repetition) grid dispatches
through :mod:`repro.core.parallel`, so suites can fan out over worker
processes and skip already-measured cells via the persistent result cache
without changing any result bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.benchmark import NanoBenchmark
from repro.core.dimensions import Dimension, DimensionVector
from repro.core.experiment import Experiment, ParameterGrid
from repro.core.parallel import (
    ParallelExecutor,
    ResultCache,
    WorkUnit,
    benchmark_units,
    group_label,
)
from repro.core.results import RepetitionSet
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.fs.stack import DEFAULT_FS_TYPES
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.micro import (
    create_delete_workload,
    random_read_workload,
    sequential_read_workload,
    stat_workload,
)

MiB = 1024 * 1024


def default_suite(
    testbed: Optional[TestbedConfig] = None,
    quick: bool = False,
) -> List[NanoBenchmark]:
    """The paper's minimum suite, sized relative to the testbed's page cache.

    The component working-set sizes are derived from the testbed so that each
    component actually measures what it claims to measure:

    * *in-memory*: a file at ~25% of the page cache, pre-warmed;
    * *disk layout*: sequential and random cold reads of a file ~4x the cache;
    * *cache warm-up/eviction*: a file at ~95% of the cache, measured from
      cold, reported as a timeline;
    * *meta-data*: create/delete churn and stat scans;
    * *scaling*: the in-memory component at 1 and 8 threads.
    """
    testbed = testbed if testbed is not None else paper_testbed()
    cache_bytes = testbed.page_cache_bytes
    reps = 3 if quick else 5
    short = 5.0 if quick else 20.0

    in_memory_size = max(16 * MiB, int(cache_bytes * 0.25))
    ondisk_size = int(cache_bytes * 4)
    warmup_size = int(cache_bytes * 0.95)

    benchmarks: List[NanoBenchmark] = [
        NanoBenchmark(
            name="inmemory-random-read",
            description="Random reads of a file well inside the page cache (pre-warmed)",
            workload_factory=lambda size=in_memory_size: random_read_workload(size),
            dimensions=DimensionVector.of(isolates=[Dimension.CACHING]),
            config=BenchmarkConfig(
                duration_s=short, repetitions=reps, warmup_mode=WarmupMode.PREWARM
            ),
        ),
        NanoBenchmark(
            name="ondisk-sequential-read",
            description="Cold-cache sequential read of a file 4x the page cache",
            workload_factory=lambda size=ondisk_size: sequential_read_workload(size),
            dimensions=DimensionVector.of(isolates=[Dimension.ONDISK], exercises=[Dimension.IO]),
            config=BenchmarkConfig(
                duration_s=short, repetitions=reps, warmup_mode=WarmupMode.NONE
            ),
        ),
        NanoBenchmark(
            name="ondisk-random-read",
            description="Cold-cache random read of a file 4x the page cache",
            workload_factory=lambda size=ondisk_size: random_read_workload(size),
            dimensions=DimensionVector.of(isolates=[Dimension.ONDISK], exercises=[Dimension.IO]),
            config=BenchmarkConfig(
                duration_s=short, repetitions=reps, warmup_mode=WarmupMode.NONE
            ),
        ),
        NanoBenchmark(
            name="cache-warmup",
            description="Random read of a file just under the cache size, measured from cold",
            workload_factory=lambda size=warmup_size: random_read_workload(size),
            dimensions=DimensionVector.of(isolates=[Dimension.CACHING]),
            config=BenchmarkConfig(
                duration_s=120.0 if quick else 400.0,
                repetitions=max(2, reps - 2),
                warmup_mode=WarmupMode.NONE,
                interval_s=10.0,
                histogram_interval_s=10.0,
            ),
        ),
        NanoBenchmark(
            name="metadata-create-delete",
            description="Create/delete churn across directories",
            workload_factory=lambda: create_delete_workload(file_count=500, directories=10),
            dimensions=DimensionVector.of(isolates=[Dimension.METADATA]),
            config=BenchmarkConfig(
                duration_s=short, repetitions=reps, warmup_mode=WarmupMode.NONE
            ),
        ),
        NanoBenchmark(
            name="metadata-stat",
            description="Random stat() calls over a large population",
            workload_factory=lambda: stat_workload(file_count=2000, directories=40),
            dimensions=DimensionVector.of(isolates=[Dimension.METADATA], exercises=[Dimension.CACHING]),
            config=BenchmarkConfig(
                duration_s=short, repetitions=reps, warmup_mode=WarmupMode.NONE
            ),
        ),
        NanoBenchmark(
            name="scaling-threads",
            description="In-memory random reads at 8 threads (vs 1 thread in-memory component)",
            workload_factory=lambda size=in_memory_size: random_read_workload(size, threads=8),
            dimensions=DimensionVector.of(isolates=[Dimension.SCALING], exercises=[Dimension.CACHING]),
            config=BenchmarkConfig(
                duration_s=short, repetitions=reps, warmup_mode=WarmupMode.PREWARM
            ),
        ),
    ]
    return benchmarks


@dataclass
class SuiteResult:
    """Results of a suite run: benchmark x file system -> repetition set."""

    testbed: TestbedConfig
    results: Dict[str, Dict[str, RepetitionSet]] = field(default_factory=dict)
    benchmarks: Dict[str, NanoBenchmark] = field(default_factory=dict)

    def add(self, benchmark: NanoBenchmark, fs_type: str, repetitions: RepetitionSet) -> None:
        """Record the result of one benchmark on one file system."""
        self.results.setdefault(benchmark.name, {})[fs_type] = repetitions
        self.benchmarks[benchmark.name] = benchmark

    def benchmark_names(self) -> List[str]:
        """Benchmarks present in the result, in insertion order."""
        return list(self.results)

    def filesystems(self) -> List[str]:
        """File systems present in the result."""
        names: List[str] = []
        for per_fs in self.results.values():
            for fs_name in per_fs:
                if fs_name not in names:
                    names.append(fs_name)
        return names

    def result_for(self, benchmark_name: str, fs_type: str) -> RepetitionSet:
        """The repetition set of one (benchmark, file system) cell."""
        return self.results[benchmark_name][fs_type]

    def by_dimension(self) -> Dict[Dimension, List[str]]:
        """Benchmark names grouped by their primary dimension."""
        grouped: Dict[Dimension, List[str]] = {}
        for name, benchmark in self.benchmarks.items():
            primary = benchmark.primary_dimension()
            if primary is not None:
                grouped.setdefault(primary, []).append(name)
        return grouped


class NanoBenchmarkSuite:
    """Runs a list of nano-benchmarks across one or more file systems.

    Parameters
    ----------
    benchmarks, testbed, quick:
        What to run and on what machine (defaults to :func:`default_suite`
        on the paper's testbed).
    n_workers:
        Worker processes for the fan-out over (benchmark, file system,
        repetition); ``1`` runs serially in-process, ``None``/``0`` uses one
        worker per CPU.  Results are bit-identical for any worker count.
    cache_dir:
        Directory of a persistent result cache; ``None`` disables caching.
        With a cache, re-running the suite skips every already-measured cell.
    snapshot_path:
        The aging axis: when set, every repetition of every benchmark starts
        from the :class:`~repro.aging.snapshot.StateSnapshot` stored at this
        path instead of a fresh file system; the snapshot's fingerprint
        joins the cache key, so fresh and aged measurements never collide.
        A snapshot holds the state of exactly one file system, so
        ``fs_types`` at run time must name only that file system (checked
        before any measurement starts).
    """

    def __init__(
        self,
        benchmarks: Optional[Sequence[NanoBenchmark]] = None,
        testbed: Optional[TestbedConfig] = None,
        quick: bool = False,
        n_workers: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        snapshot_path: Optional[str] = None,
    ) -> None:
        self.testbed = testbed if testbed is not None else paper_testbed()
        self.benchmarks = list(benchmarks) if benchmarks is not None else default_suite(self.testbed, quick=quick)
        if not self.benchmarks:
            raise ValueError("suite must contain at least one benchmark")
        names = [benchmark.name for benchmark in self.benchmarks]
        if len(set(names)) != len(names):
            # Benchmark names key the result cells (and the executor's work
            # groups); duplicates would pool unrelated measurements.
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"duplicate benchmark names in suite: {', '.join(duplicates)}")
        self.n_workers = n_workers
        self.cache_dir = cache_dir
        self.snapshot_path = snapshot_path

    def make_executor(self) -> ParallelExecutor:
        """The executor this suite dispatches through (one cache per call)."""
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        return ParallelExecutor(n_workers=self.n_workers, cache=cache)

    def work_units(self, fs_types: Sequence[str]) -> List[WorkUnit]:
        """Every (benchmark, file system, repetition) unit of a suite run.

        Duplicate file system names are dropped (keeping first occurrence),
        matching the old serial loop where a repeated ``--fs`` simply
        overwrote the same result cell.
        """
        fingerprint = None
        if self.snapshot_path is not None:
            # Imported lazily: the aging subsystem sits above the core layer.
            from repro.aging.snapshot import load_snapshot_cached

            snapshot = load_snapshot_cached(self.snapshot_path)
            fingerprint = snapshot.fingerprint
            mismatched = [fs for fs in dict.fromkeys(fs_types) if fs != snapshot.fs_type]
            if mismatched:
                # Fail before any measurement runs, not per-unit in a worker.
                raise ValueError(
                    f"snapshot {self.snapshot_path} holds {snapshot.fs_type!r} state; "
                    f"it cannot be restored as {', '.join(repr(fs) for fs in mismatched)} "
                    f"(run with --fs {snapshot.fs_type})"
                )
        units: List[WorkUnit] = []
        for benchmark in self.benchmarks:
            for fs_type in dict.fromkeys(fs_types):
                units.extend(
                    benchmark_units(
                        benchmark,
                        fs_type,
                        testbed=self.testbed,
                        snapshot_path=self.snapshot_path,
                        snapshot_fingerprint=fingerprint,
                    )
                )
        return units

    def as_experiment(self, fs_types: Sequence[str] = DEFAULT_FS_TYPES) -> Experiment:
        """This suite as a declarative :class:`~repro.core.experiment.Experiment`.

        The grid is ``workload (the suite's benchmarks) x fs`` -- plus the
        aging snapshot when configured -- expanded workload-major exactly
        like the legacy serial loop.  Duplicate file system names are
        dropped (keeping first occurrence), matching the old behaviour where
        a repeated ``--fs`` simply overwrote the same result cell.  Cells and
        cache keys are identical to what :meth:`work_units` produces, so a
        suite run and an equivalent experiment run share every cache entry.
        """
        if not fs_types:
            raise ValueError("fs_types must not be empty")
        axes = {
            "workload": list(self.benchmarks),
            "fs": list(dict.fromkeys(fs_types)),
        }
        if self.snapshot_path is not None:
            axes["snapshot"] = [self.snapshot_path]
        return Experiment(
            grid=ParameterGrid(axes),
            name="nano-benchmark-suite",
            testbed=self.testbed,
            n_workers=self.n_workers,
            cache_dir=self.cache_dir,
        )

    def run(
        self,
        fs_types: Sequence[str] = DEFAULT_FS_TYPES,
        executor: Optional[ParallelExecutor] = None,
    ) -> SuiteResult:
        """Run every benchmark on every file system.

        Since the experiment-API redesign this is a thin shim: the suite
        declares itself as an :class:`~repro.core.experiment.Experiment`
        (see :meth:`as_experiment`) and reassembles the familiar
        :class:`SuiteResult`; results and cache keys are bit-identical to
        the pre-redesign path.  ``executor`` overrides the suite's own
        executor (used by surveys that share one cache and worker pool
        across several suites).
        """
        outcome = self.as_experiment(fs_types).run(
            executor=executor if executor is not None else self.make_executor()
        )
        suite_result = SuiteResult(testbed=self.testbed)
        for benchmark in self.benchmarks:
            for fs_type in dict.fromkeys(fs_types):
                suite_result.add(
                    benchmark, fs_type, outcome.sets[group_label(benchmark.name, fs_type)]
                )
        return suite_result
