"""The benchmarking core: the paper's proposed methodology, implemented.

The HotOS paper's position is that file systems must be evaluated as
multi-dimensional systems, with statistically honest reporting.  This
subpackage is that methodology as a library:

* :mod:`repro.core.dimensions` -- the five evaluation dimensions and coverage
  vectors for benchmarks.
* :mod:`repro.core.histogram` -- log2-bucket latency histograms (the paper's
  Filebench modification).
* :mod:`repro.core.timeline` -- throughput and histogram time series
  (Figures 2 and 4).
* :mod:`repro.core.stats` -- summary statistics, confidence intervals,
  bi-modality detection, fragility metrics.
* :mod:`repro.core.steady_state` -- warm-up trimming and steady-state
  detection.
* :mod:`repro.core.results` -- run/repetition/sweep result containers.
* :mod:`repro.core.runner` -- the measurement protocol: repetitions,
  cache-state control, environment-noise injection, interval sampling.
* :mod:`repro.core.parallel` -- process-pool fan-out over repetitions and the
  persistent result cache (bit-identical to serial execution).
* :mod:`repro.core.experiment` -- the declarative Experiment API: parameter
  grids over named axes (fs, workload, device, scheduler, cache size, aging
  snapshot, seed, protocol overrides) expanded onto the executor.
* :mod:`repro.core.frame` -- tidy result frames (one row per repetition x
  metric) with filter/group_by/pivot/summary and JSONL/CSV round-trips: the
  analysis layer's lingua franca.
* :mod:`repro.core.benchmark`, :mod:`repro.core.suite` -- nano-benchmarks and
  the multi-dimensional suite the paper calls for.
* :mod:`repro.core.selfscaling` -- self-scaling parameter sweeps that locate
  the memory/disk transition automatically.
* :mod:`repro.core.report` -- multi-dimensional, range-based reporting.
* :mod:`repro.core.survey` -- the benchmark-usage survey behind Table 1.
"""

from repro.core.dimensions import Coverage, Dimension, DimensionVector
from repro.core.histogram import LatencyHistogram, bucket_label
from repro.core.persistence import (
    load_repetitions,
    load_run_result,
    load_sweep,
    save_repetitions,
    save_run_result,
    save_sweep,
)
from repro.core.results import RepetitionSet, RunResult, SweepResult, merge_repetition_sets
from repro.core.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    EnvironmentNoise,
    WarmupMode,
    run_single_repetition,
)
from repro.core.parallel import (
    CacheStats,
    ParallelExecutor,
    ResultCache,
    WorkUnit,
    benchmark_units,
    cache_key,
    execute_unit,
)
from repro.core.stats import (
    SummaryStatistics,
    bimodality_coefficient,
    bootstrap_ci,
    confidence_interval,
    detect_outliers_iqr,
    fragility_index,
    required_repetitions,
    summarize,
    welch_t_test,
)
from repro.core.experiment import (
    Experiment,
    ExperimentCell,
    ExperimentResult,
    ParameterGrid,
)
from repro.core.frame import PivotTable, ResultFrame, rows_for_run, run_metrics
from repro.core.steady_state import SteadyStateDetector, detect_steady_state, trim_warmup
from repro.core.timeline import HistogramTimeline, IntervalSeries
from repro.core.benchmark import NanoBenchmark
from repro.core.suite import NanoBenchmarkSuite, SuiteResult, default_suite
from repro.core.selfscaling import SelfScalingBenchmark, SelfScalingResult
from repro.core.report import ReportBuilder, ascii_plot, format_table
from repro.core.survey import (
    BenchmarkEntry,
    MeasuredSurvey,
    MeasuredSurveyResult,
    SurveyDatabase,
    load_paper_survey,
)

__all__ = [
    "Experiment",
    "ExperimentCell",
    "ExperimentResult",
    "ParameterGrid",
    "PivotTable",
    "ResultFrame",
    "rows_for_run",
    "run_metrics",
    "Coverage",
    "Dimension",
    "DimensionVector",
    "LatencyHistogram",
    "bucket_label",
    "load_repetitions",
    "load_sweep",
    "save_repetitions",
    "save_sweep",
    "RepetitionSet",
    "RunResult",
    "SweepResult",
    "BenchmarkConfig",
    "BenchmarkRunner",
    "EnvironmentNoise",
    "WarmupMode",
    "SummaryStatistics",
    "bimodality_coefficient",
    "bootstrap_ci",
    "confidence_interval",
    "detect_outliers_iqr",
    "fragility_index",
    "required_repetitions",
    "summarize",
    "welch_t_test",
    "SteadyStateDetector",
    "detect_steady_state",
    "trim_warmup",
    "HistogramTimeline",
    "IntervalSeries",
    "NanoBenchmark",
    "NanoBenchmarkSuite",
    "SuiteResult",
    "default_suite",
    "SelfScalingBenchmark",
    "SelfScalingResult",
    "ReportBuilder",
    "ascii_plot",
    "format_table",
    "BenchmarkEntry",
    "MeasuredSurvey",
    "MeasuredSurveyResult",
    "SurveyDatabase",
    "load_paper_survey",
    "load_run_result",
    "save_run_result",
    "merge_repetition_sets",
    "run_single_repetition",
    "CacheStats",
    "ParallelExecutor",
    "ResultCache",
    "WorkUnit",
    "benchmark_units",
    "cache_key",
    "execute_unit",
]
