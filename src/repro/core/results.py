"""Result containers: runs, repetition sets and parameter sweeps.

The containers deliberately keep *more* than a single number per run -- the
full latency histogram, the interval timeline and (optionally) the raw
latencies -- because the paper's whole argument is that the single number is
the problem.  Reporting code decides later how much of that to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.histogram import LatencyHistogram
from repro.core.stats import SummaryStatistics, fragility_index, summarize
from repro.core.timeline import HistogramTimeline, IntervalSeries


@dataclass
class RunResult:
    """Everything recorded about one benchmark repetition.

    Attributes
    ----------
    workload_name, fs_name:
        Identification of what was run on what.
    repetition:
        Zero-based repetition index within its :class:`RepetitionSet`.
    seed:
        Seed used for this repetition (stack and workload randomness).
    measured_duration_s:
        Length of the measured window in simulated seconds (excludes warm-up).
    warmup_duration_s:
        Simulated time spent warming up before measurement started.
    operations:
        Operations completed inside the measured window.
    throughput_ops_s:
        ``operations / measured_duration_s``.
    histogram:
        Latency histogram of the measured window.
    timeline:
        Per-interval throughput series of the measured window.
    histogram_timeline:
        Optional per-interval histograms (Figure 4 style), when enabled.
    raw_latencies_ns:
        Optional raw latency list, when enabled.
    cache_hit_ratio, device_reads, device_writes, bytes_read, bytes_written:
        Stack-level counters captured at the end of the measured window.
    environment:
        Description of the perturbed environment for this repetition
        (effective cache bytes, CPU speed factor) -- the "noise" the runner
        injected to expose fragility.
    client_metrics:
        Per-client scalar metrics (operations, throughput, exact
        p50/p95/p99 latency) when the repetition ran with concurrent
        clients (see :mod:`repro.core.concurrency`); ``None`` on the legacy
        single-client path, so existing results and cache entries keep
        their exact payloads.
    attribution:
        Per-layer, per-op-type latency breakdown (see :mod:`repro.obs`),
        present only when the repetition ran with tracing enabled.  Derived
        evidence, reproducible on demand -- deliberately **never
        serialized**, so payloads and cache entries stay byte-identical
        with tracing on or off.
    trace_events:
        The (bounded) trace-event ring from a traced repetition; in-memory
        only, never serialized.
    """

    workload_name: str
    fs_name: str
    repetition: int
    seed: int
    measured_duration_s: float
    warmup_duration_s: float
    operations: int
    throughput_ops_s: float
    histogram: LatencyHistogram
    timeline: IntervalSeries
    histogram_timeline: Optional[HistogramTimeline] = None
    raw_latencies_ns: Optional[List[float]] = None
    cache_hit_ratio: float = 0.0
    device_reads: int = 0
    device_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    environment: Dict[str, float] = field(default_factory=dict)
    client_metrics: Optional[List[Dict[str, float]]] = None
    attribution: Optional[Dict[str, object]] = None
    trace_events: Optional[List] = None

    @property
    def clients(self) -> int:
        """Number of concurrent client sessions this repetition ran with."""
        return len(self.client_metrics) if self.client_metrics else 1

    @property
    def mean_latency_ns(self) -> float:
        """Mean operation latency inside the measured window."""
        return self.histogram.mean_ns()

    @property
    def p95_latency_ns(self) -> float:
        """95th-percentile latency (bucket-approximated)."""
        return self.histogram.percentile(95.0)

    @property
    def p99_latency_ns(self) -> float:
        """99th-percentile latency (bucket-approximated)."""
        return self.histogram.percentile(99.0)

    def describe(self) -> str:
        """One-line description used in logs and reports."""
        return (
            f"{self.workload_name} on {self.fs_name} (rep {self.repetition}): "
            f"{self.throughput_ops_s:.0f} ops/s, mean latency {self.mean_latency_ns / 1000:.1f} us, "
            f"hit ratio {self.cache_hit_ratio:.2f}"
        )


@dataclass
class RepetitionSet:
    """All repetitions of one benchmark configuration."""

    label: str
    runs: List[RunResult] = field(default_factory=list)

    def add(self, run: RunResult) -> None:
        """Append one repetition."""
        self.runs.append(run)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    # ------------------------------------------------------------ aggregates
    def throughputs(self) -> List[float]:
        """Per-repetition throughput values."""
        return [run.throughput_ops_s for run in self.runs]

    def throughput_summary(self) -> SummaryStatistics:
        """Summary statistics of throughput across repetitions."""
        return summarize(self.throughputs())

    def mean_latencies_ns(self) -> List[float]:
        """Per-repetition mean latencies."""
        return [run.mean_latency_ns for run in self.runs]

    def latency_summary(self) -> SummaryStatistics:
        """Summary statistics of the mean latency across repetitions."""
        return summarize(self.mean_latencies_ns())

    def merged_histogram(self) -> LatencyHistogram:
        """Latency histogram pooled across repetitions."""
        merged = LatencyHistogram()
        for run in self.runs:
            merged = merged.merge(run.histogram)
        return merged

    def hit_ratios(self) -> List[float]:
        """Per-repetition cache hit ratios."""
        return [run.cache_hit_ratio for run in self.runs]

    def first(self) -> RunResult:
        """The first repetition (raises ``IndexError`` when empty)."""
        return self.runs[0]

    # --------------------------------------------------------------- merging
    def sorted_by_repetition(self) -> "RepetitionSet":
        """A copy with runs ordered by repetition index (ties keep input order)."""
        return RepetitionSet(
            label=self.label, runs=sorted(self.runs, key=lambda run: run.repetition)
        )

    def merge(self, other: "RepetitionSet") -> "RepetitionSet":
        """Combine two shards of the same configuration into one set.

        Used to reassemble results measured by different workers (or loaded
        from different archive files) into the set a serial run would have
        produced: runs are pooled and re-ordered by repetition index.  The
        labels must match -- merging different configurations would silently
        fabricate a distribution that was never measured.
        """
        if other.label != self.label:
            raise ValueError(
                f"refusing to merge different configurations: {self.label!r} vs {other.label!r}"
            )
        return RepetitionSet(label=self.label, runs=self.runs + other.runs).sorted_by_repetition()


def merge_repetition_sets(shards: Iterable[RepetitionSet]) -> RepetitionSet:
    """Merge any number of same-label shards (see :meth:`RepetitionSet.merge`).

    Raises ``ValueError`` when given no shards or shards of mixed labels.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("need at least one shard to merge")
    merged = shards[0]
    for shard in shards[1:]:
        merged = merged.merge(shard)
    return merged.sorted_by_repetition()


@dataclass
class SweepResult:
    """Results of sweeping one parameter (e.g. file size) across repetition sets."""

    parameter_name: str
    unit: str = ""
    points: Dict[float, RepetitionSet] = field(default_factory=dict)

    def add(self, parameter_value: float, repetitions: RepetitionSet) -> None:
        """Record the repetition set measured at one parameter value."""
        self.points[float(parameter_value)] = repetitions

    def parameters(self) -> List[float]:
        """Swept parameter values in ascending order."""
        return sorted(self.points)

    def repetitions_at(self, parameter_value: float) -> RepetitionSet:
        """The repetition set measured at ``parameter_value``."""
        return self.points[float(parameter_value)]

    def throughput_summaries(self) -> List[Tuple[float, SummaryStatistics]]:
        """(parameter, throughput summary) pairs in parameter order."""
        return [(value, self.points[value].throughput_summary()) for value in self.parameters()]

    def mean_throughputs(self) -> List[Tuple[float, float]]:
        """(parameter, mean throughput) pairs -- the Figure 1 curve."""
        return [(value, summary.mean) for value, summary in self.throughput_summaries()]

    def relative_stddevs(self) -> List[Tuple[float, float]]:
        """(parameter, relative stddev %) pairs -- Figure 1's right-hand axis."""
        return [
            (value, summary.relative_stddev_percent)
            for value, summary in self.throughput_summaries()
        ]

    def fragility(self) -> float:
        """Fragility index of mean throughput across the sweep (see stats)."""
        return fragility_index(self.mean_throughputs())

    def dynamic_range(self) -> float:
        """Ratio between the largest and smallest mean throughput in the sweep."""
        means = [m for _, m in self.mean_throughputs() if m > 0]
        if len(means) < 2:
            return 1.0
        return max(means) / min(means)

    def __len__(self) -> int:
        return len(self.points)
