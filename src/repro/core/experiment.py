"""The declarative Experiment API: one grid, one executor, one result frame.

The paper's diagnosis -- every study hand-rolls its own harness -- used to be
true of this repository too: the figure regenerators, the suite, the survey
and the aged-vs-fresh comparison were seven bespoke loops with seven bespoke
result classes.  An :class:`Experiment` replaces the loops with a
declaration: a :class:`ParameterGrid` of named axes whose cartesian product
expands into the existing :class:`~repro.core.parallel.WorkUnit` grid and
executes through :class:`~repro.core.parallel.ParallelExecutor` -- so every
guarantee of that layer (bit-identical parallel execution, the persistent
result cache with *unchanged* cache keys) applies to every experiment for
free, and every new comparison axis is one more grid entry rather than a new
module.

Axes
----
``fs``
    File system names resolved through ``repro.fs.stack.FS_REGISTRY``.
``workload``
    Workload names resolved through ``repro.workloads.WORKLOAD_REGISTRY``
    (factories are testbed-aware, so working sets scale with the machine),
    or ready-made :class:`~repro.workloads.spec.WorkloadSpec` /
    :class:`~repro.core.benchmark.NanoBenchmark` objects.
``device``, ``scheduler``, ``cache_mb``
    Testbed variations: device models from
    ``repro.storage.DEVICE_REGISTRY``, I/O schedulers from
    ``repro.storage.device.SCHEDULER_REGISTRY``, and the page-cache size in
    MiB (the paper's fragility axis).
``snapshot``
    Aged starting states: ``None`` for a fresh file system or the path of a
    :class:`~repro.aging.snapshot.StateSnapshot` (the snapshot fingerprint
    joins the cache key exactly as before).
``seed``
    Effective seeds, pooled into the repetitions of each cell rather than
    multiplying the cell count; without a seed axis each cell runs
    ``config.repetitions`` repetitions from ``config.seed`` exactly like the
    legacy loops.
anything else
    A field of :class:`~repro.core.runner.BenchmarkConfig` (``duration_s``,
    ``warmup_mode``, ...), overridden per cell.

Results land in a tidy :class:`~repro.core.frame.ResultFrame` (one row per
repetition x metric) carried by the :class:`ExperimentResult`, alongside the
familiar per-cell :class:`~repro.core.results.RepetitionSet` containers.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, fields as dataclass_fields, replace
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.benchmark import NanoBenchmark
from repro.core.frame import ResultFrame
from repro.core.parallel import (
    CacheStats,
    ParallelExecutor,
    ResultCache,
    WorkUnit,
    group_label,
)
from repro.core.results import RepetitionSet
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.spec import WorkloadSpec

MiB = 1024 * 1024

#: Axes with dedicated resolution rules; every other axis name must be a
#: BenchmarkConfig field (a per-cell protocol override).
SPECIAL_AXES = ("fs", "workload", "device", "scheduler", "cache_mb", "snapshot", "seed")


def _config_override_fields() -> Dict[str, Any]:
    """BenchmarkConfig fields usable as grid axes (``seed`` has its own axis)."""
    return {f.name: f for f in dataclass_fields(BenchmarkConfig) if f.name != "seed"}


_config_field_types: Optional[Dict[str, Any]] = None


def _coerce_override(name: str, value: Any) -> Any:
    """Coerce an override to its field's declared type where lossless.

    ``--axis duration_s=2`` parses as ``int`` but the field is ``float``;
    without coercion the canonical hash of ``2`` differs from ``2.0`` and an
    identical library-declared run would miss the cache.
    """
    global _config_field_types
    if isinstance(value, bool) or not isinstance(value, int):
        return value
    if _config_field_types is None:
        from typing import get_type_hints

        _config_field_types = get_type_hints(BenchmarkConfig)
    hint = _config_field_types.get(name)
    if hint is float or float in getattr(hint, "__args__", ()):
        return float(value)
    return value


class ParameterGrid:
    """Named axes whose cartesian product defines an experiment's cells.

    Axis order is declaration order and the product iterates with the *last*
    axis fastest (``itertools.product`` semantics), so
    ``ParameterGrid.of(workload=..., fs=...)`` enumerates workload-major --
    the order the legacy suite loop used.  Scalars are promoted to
    single-value axes; every axis must be non-empty.
    """

    def __init__(self, axes: Mapping[str, Any]) -> None:
        if not axes:
            raise ValueError("a parameter grid needs at least one axis")
        normalized: Dict[str, Tuple[Any, ...]] = {}
        for name, values in axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
                values = (values,)
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} must have at least one value")
            normalized[str(name)] = values
        self.axes = normalized

    @classmethod
    def of(cls, **axes: Any) -> "ParameterGrid":
        """Keyword-style constructor: ``ParameterGrid.of(fs=("ext2", "xfs"))``."""
        return cls(axes)

    def axis_names(self) -> List[str]:
        """Axis names in declaration order."""
        return list(self.axes)

    def axis(self, name: str) -> Tuple[Any, ...]:
        """The values of one axis (``KeyError`` if absent)."""
        return self.axes[name]

    def with_axis(self, name: str, values: Any) -> "ParameterGrid":
        """A copy with one axis added or replaced."""
        merged: Dict[str, Any] = dict(self.axes)
        merged[name] = values
        return ParameterGrid(merged)

    def __contains__(self, name: str) -> bool:
        return name in self.axes

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self, exclude: Sequence[str] = ()) -> List[Dict[str, Any]]:
        """Every combination of axis values, as dictionaries.

        ``exclude`` drops axes from the product (the experiment excludes
        ``seed``, which pools into repetitions instead of multiplying cells).
        """
        names = [name for name in self.axes if name not in exclude]
        if not names:
            return [{}]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[name] for name in names))
        ]

    def describe(self) -> str:
        """One-line summary: ``fs(2) x workload(3) x seed(5) = 30 grid points``.

        Grid points, not measurements: without a seed axis each cell still
        runs ``config.repetitions`` repetitions (the grid cannot know how
        many -- :meth:`Experiment.describe` reports the real total).
        """
        parts = [f"{name}({len(values)})" for name, values in self.axes.items()]
        return " x ".join(parts) + f" = {len(self)} grid points"


@dataclass
class ExperimentCell:
    """One fully resolved grid point: what to run, on what, how many times.

    ``axes`` holds the frame-column values identifying the cell (axis names
    mapped to readable scalars); ``seeds`` are the *effective* seeds of its
    repetitions.
    """

    label: str
    axes: Dict[str, Any]
    fs_type: str
    spec: WorkloadSpec
    config: BenchmarkConfig
    testbed: TestbedConfig
    seeds: Tuple[int, ...]
    snapshot_path: Optional[str] = None
    snapshot_fingerprint: Optional[str] = None

    def work_units(self) -> List[WorkUnit]:
        """Per-repetition work units, in repetition order.

        Repetition ``i`` runs with effective seed ``seeds[i]``; the unit's
        config is rebased so ``config.seed + i == seeds[i]``, which keeps the
        runner's contract (and therefore the cache keys and the bit-identity
        with the legacy serial loops) exactly as it was.
        """
        return [
            WorkUnit(
                fs_type=self.fs_type,
                spec=self.spec,
                config=replace(self.config, seed=seed - index, repetitions=len(self.seeds)),
                repetition=index,
                testbed=self.testbed,
                group=self.label,
                snapshot_path=self.snapshot_path,
                snapshot_fingerprint=self.snapshot_fingerprint,
            )
            for index, seed in enumerate(self.seeds)
        ]


@dataclass
class ExperimentResult:
    """Everything an :class:`Experiment` run produced.

    ``frame`` is the tidy record table (the analysis lingua franca); ``sets``
    keeps the familiar per-cell :class:`RepetitionSet` containers for code
    that wants histograms and timelines.
    """

    name: str
    cells: List[ExperimentCell]
    sets: Dict[str, RepetitionSet]
    frame: ResultFrame
    cache_stats: Optional[CacheStats] = None

    def labels(self) -> List[str]:
        """Cell labels in grid order."""
        return [cell.label for cell in self.cells]

    def cell_for(self, **axes: Any) -> ExperimentCell:
        """The unique cell whose axis values match every ``name=value`` given."""
        matches = [
            cell
            for cell in self.cells
            if all(cell.axes.get(name) == value for name, value in axes.items())
        ]
        if not matches:
            raise KeyError(f"no cell matches {axes!r}")
        if len(matches) > 1:
            labels = ", ".join(cell.label for cell in matches)
            raise KeyError(f"{axes!r} is ambiguous; matches: {labels}")
        return matches[0]

    def result_for(self, **axes: Any) -> RepetitionSet:
        """The repetition set of the unique cell matching ``axes``."""
        return self.sets[self.cell_for(**axes).label]

    def render(self) -> str:
        """A workload x file-system summary table (mean +/- relative stddev).

        When extra axes vary (snapshot, cache size, protocol overrides) the
        rows carry those axis values so no cell is silently collapsed; the
        labels are rebuilt from each cell's axes, never parsed out of
        strings.
        """
        extra_values: Dict[str, set] = {}
        for cell in self.cells:
            for name, value in cell.axes.items():
                if name not in ("fs", "workload"):
                    extra_values.setdefault(name, set()).add(repr(value))
        varying = [name for name, values in extra_values.items() if len(values) > 1]

        summary = ResultFrame()
        seen: Dict[Tuple[str, Any], int] = {}
        for cell in self.cells:
            stats = self.sets[cell.label].throughput_summary()
            row_label = _suffixed_label(
                str(cell.axes.get("workload")),
                [name for name in varying if name in cell.axes],
                cell.axes.get,
            )
            row_label = _deduped_label(
                row_label, (row_label, cell.axes.get("fs")), seen
            )
            summary.append(
                {
                    "workload": row_label,
                    "fs": cell.axes.get("fs"),
                    "value": f"{stats.mean:.0f} +/-{stats.relative_stddev_percent:.0f}%",
                }
            )
        table = summary.pivot(index="workload", columns="fs", aggregate="first").render(
            index_headers=["workload"],
            column_header=lambda fs: f"{fs} (ops/s)",
            missing="-",
        )
        lines = [
            f"Experiment: {self.name}",
            f"cells: {len(self.cells)}, repetitions: "
            f"{sum(len(cell.seeds) for cell in self.cells)}, "
            f"frame rows: {len(self.frame)}",
            "",
            table,
        ]
        if self.cache_stats is not None:
            lines.append(
                f"\ncache: {self.cache_stats.hits} hits, "
                f"{self.cache_stats.misses} misses, {self.cache_stats.stores} stores"
            )
        return "\n".join(lines)


class Experiment:
    """A declarative experiment: grid in, tidy frame out.

    Parameters
    ----------
    grid:
        The :class:`ParameterGrid` (or a plain ``{axis: values}`` mapping).
    name:
        Label recorded in the result frame's ``experiment`` column.
    config:
        Base measurement protocol.  ``None`` uses each workload's own
        protocol when the workload axis carries :class:`NanoBenchmark`
        objects (exactly like the suite did) and ``BenchmarkConfig()``
        otherwise.  Config-field axes override it per cell.
    testbed:
        Base simulated machine (default: the paper's); the ``device``,
        ``scheduler`` and ``cache_mb`` axes derive per-cell variants.
    n_workers, cache_dir:
        Parallel fan-out and persistent result cache, verbatim from
        :class:`~repro.core.parallel.ParallelExecutor` /
        :class:`~repro.core.parallel.ResultCache`.  Cache keys are those of
        the underlying work units, so cells already measured by the legacy
        entry points (or by any other experiment) are served from cache.
    pack_paths:
        Packed result artifacts (:mod:`repro.store`) attached as a
        read-through cache tier: cells found in a pack are served without
        execution, exactly like loose cache hits.  Works with or without
        ``cache_dir`` (without it the cache is read-only).
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetrySink` handed to the
        executor: every repetition's lifecycle is logged and fresh
        executions run under the wall-clock phase profiler.  Observation
        only -- results, frames and cache keys are byte-identical with or
        without it.
    """

    def __init__(
        self,
        grid: Union[ParameterGrid, Mapping[str, Any]],
        name: str = "experiment",
        config: Optional[BenchmarkConfig] = None,
        testbed: Optional[TestbedConfig] = None,
        n_workers: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        pack_paths: Sequence[str] = (),
        telemetry: Optional[Any] = None,
    ) -> None:
        self.grid = grid if isinstance(grid, ParameterGrid) else ParameterGrid(grid)
        self.name = name
        self.config = config
        self.testbed = testbed if testbed is not None else paper_testbed()
        self.n_workers = n_workers
        self.cache_dir = cache_dir
        self.pack_paths = tuple(pack_paths)
        self.telemetry = telemetry
        self._validate_axis_names()
        self._cells: Optional[List[ExperimentCell]] = None

    # -------------------------------------------------------------- expansion
    def _validate_axis_names(self) -> None:
        overrides = _config_override_fields()
        unknown = [
            name
            for name in self.grid.axis_names()
            if name not in SPECIAL_AXES and name not in overrides
        ]
        if unknown:
            known = ", ".join(list(SPECIAL_AXES) + sorted(overrides))
            raise ValueError(
                f"unknown grid axis(es) {', '.join(repr(n) for n in unknown)} "
                f"(known: {known})"
            )
        if "seed" in self.grid and "repetitions" in self.grid:
            raise ValueError(
                "declare either a seed axis or a repetitions axis, not both: "
                "the seed axis already defines each cell's repetitions"
            )

    def cells(self) -> List[ExperimentCell]:
        """The resolved grid cells (computed once, in grid order)."""
        if self._cells is None:
            self._cells = self._expand()
        return self._cells

    def work_units(self) -> List[WorkUnit]:
        """Every per-repetition work unit of the experiment, in grid order."""
        return [unit for cell in self.cells() for unit in cell.work_units()]

    def _expand(self) -> List[ExperimentCell]:
        seeds_axis: Optional[Tuple[int, ...]] = None
        if "seed" in self.grid:
            seeds_axis = tuple(int(seed) for seed in self.grid.axis("seed"))

        # The label suffix only names axes that actually vary: single-valued
        # extra axes (e.g. one snapshot for a whole aged suite) keep the
        # legacy "workload@fs" labels.
        suffix_axes = [
            name
            for name in self.grid.axis_names()
            if name not in ("fs", "workload", "seed")
            and len(set(map(repr, self.grid.axis(name)))) > 1
        ]

        cells: List[ExperimentCell] = []
        used_labels: Dict[str, int] = {}
        for point in self.grid.points(exclude=("seed",)):
            cell = self._resolve_point(point, seeds_axis, suffix_axes)
            cell.label = _deduped_label(cell.label, cell.label, used_labels)
            cells.append(cell)
        return cells

    def _resolve_point(
        self,
        point: Dict[str, Any],
        seeds_axis: Optional[Tuple[int, ...]],
        suffix_axes: Sequence[str],
    ) -> ExperimentCell:
        fs_type = point.get("fs", "ext2")
        from repro.fs.stack import FS_REGISTRY

        if fs_type not in FS_REGISTRY:
            known = ", ".join(sorted(FS_REGISTRY))
            raise ValueError(f"unknown fs {fs_type!r} on the fs axis (known: {known})")

        testbed = self._derive_testbed(point)
        # Registry factories size against the experiment's *base* testbed,
        # not the per-cell variant: otherwise a cache_mb sweep would resize
        # the working set in lockstep with the cache under test and every
        # cell would measure the same ratio.  Testbed axes vary the machine
        # under a fixed workload, which is the paper's fragility axis.
        workload_label, spec, workload_config = _resolve_workload(
            point.get("workload", "random-read-cached"), self.testbed
        )

        config = self.config or workload_config or BenchmarkConfig()
        config = self._apply_overrides(config, point)
        config.validate()

        seeds = (
            seeds_axis
            if seeds_axis is not None
            else tuple(config.seed + index for index in range(config.repetitions))
        )

        snapshot_path = point.get("snapshot")
        snapshot_fingerprint = None
        if snapshot_path is not None:
            snapshot_path = str(snapshot_path)
            # Imported lazily: the aging subsystem sits above the core layer.
            from repro.aging.snapshot import load_snapshot_cached

            snapshot = load_snapshot_cached(snapshot_path)
            snapshot_fingerprint = snapshot.fingerprint
            if snapshot.fs_type != fs_type:
                raise ValueError(
                    f"snapshot {snapshot_path} holds {snapshot.fs_type!r} state; "
                    f"it cannot be restored as {fs_type!r} "
                    f"(use fs={snapshot.fs_type} for this snapshot axis value)"
                )

        axes: Dict[str, Any] = {"fs": fs_type, "workload": workload_label}
        for name, value in point.items():
            if name in ("fs", "workload"):
                continue
            axes[name] = _axis_record_value(value)

        label = _suffixed_label(group_label(workload_label, fs_type), suffix_axes, point.get)

        return ExperimentCell(
            label=label,
            axes=axes,
            fs_type=fs_type,
            spec=spec,
            config=config,
            testbed=testbed,
            seeds=seeds,
            snapshot_path=snapshot_path,
            snapshot_fingerprint=snapshot_fingerprint,
        )

    def _derive_testbed(self, point: Dict[str, Any]) -> TestbedConfig:
        testbed = self.testbed
        if "device" in point:
            from repro.storage.config import DEVICE_REGISTRY

            device = str(point["device"])
            if device not in DEVICE_REGISTRY:
                known = ", ".join(sorted(DEVICE_REGISTRY))
                raise ValueError(f"unknown device {device!r} (known: {known})")
            testbed = replace(testbed, device_kind=device)
        if "scheduler" in point:
            from repro.storage.device import SCHEDULER_REGISTRY

            scheduler = str(point["scheduler"])
            if scheduler not in SCHEDULER_REGISTRY:
                known = ", ".join(sorted(SCHEDULER_REGISTRY))
                raise ValueError(f"unknown scheduler {scheduler!r} (known: {known})")
            testbed = replace(testbed, io_scheduler=scheduler)
        if "cache_mb" in point:
            raw = point["cache_mb"]
            cache_mb = int(raw)
            if cache_mb != raw:
                # Truncating silently would record an axis value (64.5) the
                # testbed never had.
                raise ValueError(f"cache_mb axis values must be whole MiB, got {raw!r}")
            if cache_mb <= 0:
                raise ValueError("cache_mb axis values must be positive")
            testbed = replace(
                testbed, ram_bytes=testbed.os_reserved_bytes + cache_mb * MiB
            )
        testbed.validate()
        return testbed

    def _apply_overrides(self, config: BenchmarkConfig, point: Dict[str, Any]) -> BenchmarkConfig:
        overrides = {}
        for name in point:
            if name in SPECIAL_AXES:
                continue
            value = point[name]
            if name == "warmup_mode" and isinstance(value, str):
                value = WarmupMode(value)
            overrides[name] = _coerce_override(name, value)
        return replace(config, **overrides) if overrides else config

    # -------------------------------------------------------------- execution
    def make_executor(self) -> ParallelExecutor:
        """The executor this experiment dispatches through."""
        cache = (
            ResultCache(self.cache_dir, pack_paths=self.pack_paths)
            if (self.cache_dir or self.pack_paths)
            else None
        )
        return ParallelExecutor(
            n_workers=self.n_workers, cache=cache, telemetry=self.telemetry
        )

    def run(
        self,
        executor: Optional[ParallelExecutor] = None,
        on_unit: Optional[Callable[[WorkUnit, Any, bool], None]] = None,
        on_cell: Optional[Callable[[ExperimentCell, RepetitionSet], None]] = None,
    ) -> ExperimentResult:
        """Execute the grid and assemble the tidy result frame.

        ``executor`` overrides the experiment's own executor (for sharing a
        pool/cache across experiments).  ``on_unit(unit, run, cached)`` fires
        as each repetition completes (cache hits first, then fresh results in
        completion order) and ``on_cell(cell, repetitions)`` as the last
        repetition of each cell lands -- streaming progress without touching
        the bit-identical, unit-ordered results.

        With a telemetry sink attached the per-unit ordering is: the
        executor emits the unit's terminal event (``cache-hit`` /
        ``pack-hit`` / ``exec-done``), then ``on_unit`` fires, then -- when
        that unit completed its cell -- ``on_cell``.  A failing unit emits
        its ``failed`` event and then raises out of this method; neither
        callback fires for it, and ``on_cell`` never fires for a cell with a
        failed repetition, so the event log (not the callbacks) is the
        record of what went wrong.
        """
        cells = self.cells()
        units: List[WorkUnit] = [unit for cell in cells for unit in cell.work_units()]
        executor = executor if executor is not None else self.make_executor()

        remaining = {cell.label: len(cell.seeds) for cell in cells}
        streamed: Dict[str, List[Any]] = {cell.label: [] for cell in cells}
        cell_by_label = {cell.label: cell for cell in cells}

        def _observe(unit: WorkUnit, run: Any, cached: bool) -> None:
            if on_unit is not None:
                on_unit(unit, run, cached)
            label = unit.group
            streamed[label].append(run)
            remaining[label] -= 1
            if remaining[label] == 0 and on_cell is not None:
                ordered = sorted(streamed[label], key=lambda r: r.repetition)
                on_cell(cell_by_label[label], RepetitionSet(label=label, runs=ordered))

        observe = _observe if (on_unit or on_cell) else None
        runs = executor.run_units(units, on_result=observe)

        sets: Dict[str, RepetitionSet] = {}
        for unit, run in zip(units, runs):
            if unit.group not in sets:
                sets[unit.group] = RepetitionSet(label=unit.group)
            sets[unit.group].add(run)

        frame = ResultFrame.from_cells(
            (
                {"experiment": self.name, **cell.axes},
                sets[cell.label].runs,
            )
            for cell in cells
        )
        return ExperimentResult(
            name=self.name,
            cells=cells,
            sets=sets,
            frame=frame,
            cache_stats=executor.cache.stats if executor.cache is not None else None,
        )

    def describe(self) -> str:
        """One-line description of the declared grid and its true run count."""
        cells = self.cells()
        repetitions = sum(len(cell.seeds) for cell in cells)
        return (
            f"{self.name}: {self.grid.describe()}, "
            f"{len(cells)} cells x repetitions = {repetitions} measurements"
        )


# ------------------------------------------------------------------ resolvers
def _resolve_workload(
    value: Any, testbed: TestbedConfig
) -> Tuple[str, WorkloadSpec, Optional[BenchmarkConfig]]:
    """Resolve a workload-axis value to ``(label, spec, default config)``."""
    if isinstance(value, NanoBenchmark):
        return value.name, value.build_workload(), value.config
    if isinstance(value, WorkloadSpec):
        return value.name, value, None
    if isinstance(value, str):
        from repro.workloads import WORKLOAD_REGISTRY

        try:
            factory = WORKLOAD_REGISTRY[value]
        except KeyError:
            known = ", ".join(sorted(WORKLOAD_REGISTRY))
            raise ValueError(f"unknown workload {value!r} (known: {known})") from None
        return value, factory(testbed), None
    if callable(value):
        spec = value()
        if not isinstance(spec, WorkloadSpec):
            raise TypeError(
                f"workload factory {value!r} returned {type(spec).__name__}, "
                "expected a WorkloadSpec"
            )
        return spec.name, spec, None
    raise TypeError(
        "workload axis values must be registry names, WorkloadSpec or "
        f"NanoBenchmark objects, or spec factories; got {type(value).__name__}"
    )


def _axis_record_value(value: Any) -> Any:
    """The frame-column form of an axis value (readable, JSON-friendly).

    Enums are checked before plain scalars: ``WarmupMode`` is a ``str``
    subclass, and its *value* ("prewarm") -- not ``str(member)`` -- is what
    labels, CSV and JSONL must agree on.
    """
    if isinstance(value, Enum):
        return value.value
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def _axis_label_value(name: str, value: Any) -> str:
    """The cell-label form of an axis value (short, path-free)."""
    if name == "snapshot":
        return "fresh" if value is None else os.path.basename(str(value))
    return str(_axis_record_value(value))


def _suffixed_label(
    base: str, axis_names: Sequence[str], value_for: Callable[[str], Any]
) -> str:
    """``base#axis=value,...`` for the varying axes (``base`` when none).

    The single definition behind cell labels and rendered summary rows, so
    the two can never drift apart.
    """
    suffix = ",".join(
        f"{name}={_axis_label_value(name, value_for(name))}" for name in axis_names
    )
    return f"{base}#{suffix}" if suffix else base


def _deduped_label(label: str, key: Any, counts: Dict[Any, int]) -> str:
    """``label`` the first time ``key`` is seen, ``label#N`` afterwards.

    Distinct cells whose labels collide (e.g. two specs sharing a name) stay
    distinguishable instead of silently pooling.
    """
    count = counts.get(key, 0)
    counts[key] = count + 1
    return label if not count else f"{label}#{count + 1}"
