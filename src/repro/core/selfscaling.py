"""Self-scaling parameter sweeps (Chen & Patterson, SIGMETRICS 1993).

The paper cites self-scaling benchmarks as the right tool for producing the
"entire graph" rather than a point measurement: instead of the experimenter
guessing interesting parameter values, the benchmark explores the parameter
space itself and refines where the behaviour changes fastest.

:class:`SelfScalingBenchmark` sweeps one numeric workload parameter (by
default the file size of the random-read workload), measures throughput at a
coarse grid, then recursively bisects the adjacent pair with the largest
relative change until the transition is localised to a configurable
resolution -- which is exactly how the "less than 6 MB" observation in
Section 3.1 of the paper was obtained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.results import RepetitionSet, SweepResult
from repro.core.runner import BenchmarkConfig, BenchmarkRunner
from repro.storage.config import TestbedConfig
from repro.workloads.spec import WorkloadSpec


@dataclass
class SelfScalingResult:
    """Outcome of a self-scaling sweep."""

    sweep: SweepResult
    transition_low: Optional[float]
    transition_high: Optional[float]
    evaluations: int

    @property
    def transition_width(self) -> Optional[float]:
        """Width of the localised transition region (None if no cliff found)."""
        if self.transition_low is None or self.transition_high is None:
            return None
        return self.transition_high - self.transition_low

    def describe(self, unit: str = "") -> str:
        """Readable summary of the sweep outcome."""
        if self.transition_low is None:
            return (
                f"No sharp transition found across {self.evaluations} evaluations; "
                f"dynamic range {self.sweep.dynamic_range():.1f}x"
            )
        return (
            f"Transition localised to [{self.transition_low:.0f}, {self.transition_high:.0f}] {unit} "
            f"({self.transition_width:.0f} {unit} wide) after {self.evaluations} evaluations; "
            f"dynamic range {self.sweep.dynamic_range():.1f}x"
        )


class SelfScalingBenchmark:
    """Sweep a workload parameter and automatically localise the performance cliff.

    Parameters
    ----------
    workload_for_parameter:
        Callable mapping the swept parameter value to a workload spec.
    fs_type, testbed, config:
        Passed to the underlying :class:`BenchmarkRunner`.
    parameter_name, unit:
        Used for labelling the resulting :class:`SweepResult`.
    drop_threshold:
        Relative change between adjacent grid points considered "a cliff"
        (0.5 means at least a 2x change).
    """

    def __init__(
        self,
        workload_for_parameter: Callable[[float], WorkloadSpec],
        fs_type: str = "ext2",
        testbed: Optional[TestbedConfig] = None,
        config: Optional[BenchmarkConfig] = None,
        parameter_name: str = "file_size",
        unit: str = "bytes",
        drop_threshold: float = 0.5,
    ) -> None:
        if not (0.0 < drop_threshold < 1.0):
            raise ValueError("drop_threshold must be in (0, 1)")
        self.workload_for_parameter = workload_for_parameter
        self.fs_type = fs_type
        self.testbed = testbed
        self.config = config if config is not None else BenchmarkConfig(repetitions=3, duration_s=5.0)
        self.parameter_name = parameter_name
        self.unit = unit
        self.drop_threshold = drop_threshold
        self._cache: Dict[float, RepetitionSet] = {}
        self.evaluations = 0

    # ------------------------------------------------------------- measuring
    def _measure(self, parameter: float) -> RepetitionSet:
        parameter = float(parameter)
        cached = self._cache.get(parameter)
        if cached is not None:
            return cached
        runner = BenchmarkRunner(fs_type=self.fs_type, testbed=self.testbed, config=self.config)
        spec = self.workload_for_parameter(parameter)
        result = runner.run(spec, label=f"{self.parameter_name}={parameter:g}")
        self._cache[parameter] = result
        self.evaluations += 1
        return result

    def _mean_throughput(self, parameter: float) -> float:
        return self._measure(parameter).throughput_summary().mean

    @staticmethod
    def _relative_change(a: float, b: float) -> float:
        denom = max(abs(a), abs(b))
        return abs(a - b) / denom if denom > 0 else 0.0

    # ------------------------------------------------------------------ run
    def run(
        self,
        low: float,
        high: float,
        coarse_points: int = 8,
        resolution: Optional[float] = None,
        max_refinements: int = 12,
    ) -> SelfScalingResult:
        """Sweep ``[low, high]`` coarsely, then refine the sharpest change.

        ``resolution`` is the target width of the localised transition
        (defaults to 1% of the swept range).
        """
        if high <= low:
            raise ValueError("require low < high")
        if coarse_points < 3:
            raise ValueError("coarse_points must be at least 3")
        resolution = resolution if resolution is not None else (high - low) / 100.0

        step = (high - low) / (coarse_points - 1)
        grid = [low + i * step for i in range(coarse_points)]
        for parameter in grid:
            self._measure(parameter)

        # Find the adjacent pair with the largest relative change.
        transition: Optional[Tuple[float, float]] = None
        for _ in range(max_refinements):
            ordered = sorted(self._cache)
            worst_pair = None
            worst_change = 0.0
            for left, right in zip(ordered, ordered[1:]):
                change = self._relative_change(
                    self._mean_throughput(left), self._mean_throughput(right)
                )
                if change > worst_change:
                    worst_change = change
                    worst_pair = (left, right)
            if worst_pair is None or worst_change < self.drop_threshold:
                transition = None
                break
            transition = worst_pair
            if worst_pair[1] - worst_pair[0] <= resolution:
                break
            midpoint = (worst_pair[0] + worst_pair[1]) / 2.0
            self._measure(midpoint)

        sweep = SweepResult(parameter_name=self.parameter_name, unit=self.unit)
        for parameter in sorted(self._cache):
            sweep.add(parameter, self._cache[parameter])

        low_edge, high_edge = (transition if transition is not None else (None, None))
        return SelfScalingResult(
            sweep=sweep,
            transition_low=low_edge,
            transition_high=high_edge,
            evaluations=self.evaluations,
        )
