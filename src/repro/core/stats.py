"""Statistics for honest benchmark reporting.

The paper's complaint is not that researchers report no statistics, but that
the statistics reported (a mean, sometimes a standard deviation) hide what is
actually going on: multi-modal latency distributions, order-of-magnitude
sensitivity to the working-set size, and results whose run-to-run variation
dwarfs the differences being claimed.  The functions here are the ones the
reporting layer uses to surface those effects:

* :func:`summarize` / :class:`SummaryStatistics` -- mean, spread, relative
  standard deviation (the right-hand axis of Figure 1), confidence intervals;
* :func:`confidence_interval` / :func:`bootstrap_ci` -- parametric and
  non-parametric intervals for small repetition counts;
* :func:`bimodality_coefficient` -- a quick sample-based bi-modality check to
  complement histogram mode counting;
* :func:`fragility_index` -- how much a metric moves for a small change of a
  control parameter (the paper's "just a few megabytes" observation);
* :func:`required_repetitions` -- how many repetitions are needed for a target
  confidence-interval width;
* :func:`welch_t_test` / :func:`overlapping_confidence_intervals` -- honest
  comparison of two systems.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class SummaryStatistics:
    """Summary of a sample of repeated measurements."""

    n: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    median: float
    ci95_low: float
    ci95_high: float

    @property
    def relative_stddev_percent(self) -> float:
        """Standard deviation as a percentage of the mean (Figure 1's right axis)."""
        if self.mean == 0:
            return 0.0
        return 100.0 * self.stddev / abs(self.mean)

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95% confidence interval."""
        return (self.ci95_high - self.ci95_low) / 2.0

    @property
    def relative_ci95_percent(self) -> float:
        """CI half-width as a percentage of the mean."""
        if self.mean == 0:
            return 0.0
        return 100.0 * self.ci95_halfwidth / abs(self.mean)

    def format(self, unit: str = "") -> str:
        """Readable one-line summary."""
        unit_suffix = f" {unit}" if unit else ""
        return (
            f"{self.mean:.1f}{unit_suffix} +/- {self.ci95_halfwidth:.1f} (95% CI), "
            f"sd={self.stddev:.1f} ({self.relative_stddev_percent:.1f}% of mean), "
            f"n={self.n}, range [{self.minimum:.1f}, {self.maximum:.1f}]"
        )


# Two-sided 97.5% quantiles of Student's t for small degrees of freedom.
_T_TABLE_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145,
    15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_quantile_975(dof: int) -> float:
    """97.5% t quantile; uses scipy when available, else a lookup table."""
    if dof <= 0:
        return float("nan")
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf(0.975, dof))
    except Exception:  # pragma: no cover - scipy is normally available
        keys = sorted(_T_TABLE_975)
        for key in keys:
            if dof <= key:
                return _T_TABLE_975[key]
        return 1.96


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` for a sample (requires >= 1 value)."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    data = [float(v) for v in values]
    n = len(data)
    mean = statistics.fmean(data)
    stddev = statistics.stdev(data) if n > 1 else 0.0
    low, high = confidence_interval(data)
    return SummaryStatistics(
        n=n,
        mean=mean,
        stddev=stddev,
        minimum=min(data),
        maximum=max(data),
        median=statistics.median(data),
        ci95_low=low,
        ci95_high=high,
    )


def confidence_interval(values: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of ``values``.

    With a single sample the interval collapses to the point estimate.
    """
    if not values:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    data = [float(v) for v in values]
    n = len(data)
    mean = statistics.fmean(data)
    if n == 1:
        return (mean, mean)
    stddev = statistics.stdev(data)
    if confidence == 0.95:
        t = _t_quantile_975(n - 1)
    else:
        try:
            from scipy import stats as scipy_stats

            t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, n - 1))
        except Exception:  # pragma: no cover
            t = _t_quantile_975(n - 1)
    half = t * stddev / math.sqrt(n)
    return (mean - half, mean + half)


def bootstrap_ci(
    values: Sequence[float],
    stat: Callable[[Sequence[float]], float] = statistics.fmean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for an arbitrary statistic."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if resamples <= 0:
        raise ValueError("resamples must be positive")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    data = [float(v) for v in values]
    rng = random.Random(seed)
    n = len(data)
    estimates = []
    for _ in range(resamples):
        resample = [data[rng.randrange(n)] for _ in range(n)]
        estimates.append(stat(resample))
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_index = max(0, int(math.floor(alpha * resamples)) - 1)
    hi_index = min(resamples - 1, int(math.ceil((1.0 - alpha) * resamples)) - 1)
    return (estimates[lo_index], estimates[hi_index])


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Sample standard deviation divided by the mean (0 for constant samples)."""
    if len(values) < 2:
        return 0.0
    mean = statistics.fmean(values)
    if mean == 0:
        return 0.0
    return statistics.stdev(values) / abs(mean)


def detect_outliers_iqr(values: Sequence[float], k: float = 1.5) -> List[int]:
    """Indices of values outside ``[Q1 - k*IQR, Q3 + k*IQR]`` (Tukey's rule)."""
    if len(values) < 4:
        return []
    data = sorted((float(v), i) for i, v in enumerate(values))
    ordered = [v for v, _ in data]
    q1 = _percentile(ordered, 25.0)
    q3 = _percentile(ordered, 75.0)
    iqr = q3 - q1
    low = q1 - k * iqr
    high = q3 + k * iqr
    return sorted(i for v, i in data if v < low or v > high)


def _percentile(sorted_values: Sequence[float], p: float) -> float:
    if not sorted_values:
        raise ValueError("empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return sorted_values[lower]
    frac = rank - lower
    return sorted_values[lower] * (1 - frac) + sorted_values[upper] * frac


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of ``values`` (``p`` in [0, 100])."""
    if not (0.0 <= p <= 100.0):
        raise ValueError("p must be in [0, 100]")
    return _percentile(sorted(float(v) for v in values), p)


def bimodality_coefficient(values: Sequence[float]) -> float:
    """Sarle's bimodality coefficient (sample-size corrected).

    Values above ~0.555 (the value for a uniform distribution) suggest the
    sample may be bi- or multi-modal.  Used as a cheap cross-check of the
    histogram-based mode counting when raw samples are available.
    """
    n = len(values)
    if n < 4:
        return 0.0
    mean = statistics.fmean(values)
    std = statistics.pstdev(values)
    if std == 0:
        return 0.0
    skew = sum(((v - mean) / std) ** 3 for v in values) / n
    kurt = sum(((v - mean) / std) ** 4 for v in values) / n - 3.0
    numerator = skew ** 2 + 1.0
    denominator = kurt + 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    if denominator == 0:
        return 0.0
    return numerator / denominator


BIMODALITY_THRESHOLD = 5.0 / 9.0


def fragility_index(
    metric_by_parameter: Sequence[Tuple[float, float]],
) -> float:
    """How violently a metric reacts to small parameter changes.

    ``metric_by_parameter`` is a sequence of ``(parameter, metric)`` points
    (e.g. file size vs throughput).  The index is the maximum absolute
    relative change of the metric between *adjacent* parameter values:

    ``max |m[i+1] - m[i]| / max(m[i+1], m[i])``

    An index near 0 means the metric is stable across the sweep; an index
    near 1 means somewhere in the sweep the metric collapses (or explodes)
    between neighbouring parameter values -- the Figure 1 cliff has an index
    of ~0.9.
    """
    points = sorted((float(p), float(m)) for p, m in metric_by_parameter)
    if len(points) < 2:
        return 0.0
    worst = 0.0
    for (_, left), (_, right) in zip(points, points[1:]):
        denom = max(abs(left), abs(right))
        if denom == 0:
            continue
        worst = max(worst, abs(right - left) / denom)
    return worst


def required_repetitions(
    values: Sequence[float],
    target_relative_ci: float = 0.05,
    confidence: float = 0.95,
    max_repetitions: int = 1000,
) -> int:
    """Estimate how many repetitions are needed for a target CI half-width.

    Given a pilot sample, returns the smallest ``n`` such that the predicted
    ``t * s / sqrt(n)`` is at most ``target_relative_ci * mean``.
    """
    if len(values) < 2:
        raise ValueError("need at least two pilot measurements")
    if not (0.0 < target_relative_ci < 1.0):
        raise ValueError("target_relative_ci must be in (0, 1)")
    mean = statistics.fmean(values)
    stddev = statistics.stdev(values)
    if mean == 0 or stddev == 0:
        return len(values)
    target_halfwidth = abs(mean) * target_relative_ci
    for n in range(2, max_repetitions + 1):
        t = _t_quantile_975(n - 1) if confidence == 0.95 else _t_quantile_975(n - 1)
        if t * stddev / math.sqrt(n) <= target_halfwidth:
            return n
    return max_repetitions


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's unequal-variance t-test; returns ``(t_statistic, p_value)``.

    Falls back to a normal approximation for the p-value if scipy is missing.
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("both samples need at least two values")
    mean_a, mean_b = statistics.fmean(a), statistics.fmean(b)
    var_a, var_b = statistics.variance(a), statistics.variance(b)
    na, nb = len(a), len(b)
    se = math.sqrt(var_a / na + var_b / nb)
    if se == 0:
        return (0.0, 1.0) if mean_a == mean_b else (math.inf, 0.0)
    t = (mean_a - mean_b) / se
    dof_num = (var_a / na + var_b / nb) ** 2
    dof_den = (var_a / na) ** 2 / (na - 1) + (var_b / nb) ** 2 / (nb - 1)
    dof = dof_num / dof_den if dof_den > 0 else na + nb - 2
    try:
        from scipy import stats as scipy_stats

        p = float(2.0 * scipy_stats.t.sf(abs(t), dof))
    except Exception:  # pragma: no cover
        p = 2.0 * (1.0 - _normal_cdf(abs(t)))
    return (t, p)


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def overlapping_confidence_intervals(a: Sequence[float], b: Sequence[float], confidence: float = 0.95) -> bool:
    """True when the two samples' confidence intervals overlap.

    Overlapping intervals mean the honest conclusion is "no demonstrated
    difference" -- the comparison report uses this to refuse to declare
    winners that the data does not support.
    """
    low_a, high_a = confidence_interval(a, confidence)
    low_b, high_b = confidence_interval(b, confidence)
    return not (high_a < low_b or high_b < low_a)


def speedup_with_uncertainty(
    baseline: Sequence[float], candidate: Sequence[float], resamples: int = 2000, seed: int = 0
) -> Tuple[float, float, float]:
    """Speedup of ``candidate`` over ``baseline`` with a bootstrap 95% interval.

    Returns ``(speedup, low, high)`` where speedup is the ratio of means.
    """
    if not baseline or not candidate:
        raise ValueError("both samples must be non-empty")
    base_mean = statistics.fmean(baseline)
    if base_mean == 0:
        raise ValueError("baseline mean is zero")
    point = statistics.fmean(candidate) / base_mean
    rng = random.Random(seed)
    ratios = []
    nb, nc = len(baseline), len(candidate)
    for _ in range(resamples):
        b = statistics.fmean([baseline[rng.randrange(nb)] for _ in range(nb)])
        c = statistics.fmean([candidate[rng.randrange(nc)] for _ in range(nc)])
        if b != 0:
            ratios.append(c / b)
    ratios.sort()
    if not ratios:
        return (point, point, point)
    lo = ratios[max(0, int(0.025 * len(ratios)) - 1)]
    hi = ratios[min(len(ratios) - 1, int(math.ceil(0.975 * len(ratios))) - 1)]
    return (point, lo, hi)
