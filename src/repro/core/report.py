"""Multi-dimensional, range-based reporting.

"Let's get away from single-number reporting. ... In the interest of full
disclosure, let's report a range of values that span multiple dimensions."
The helpers here render sweeps, timelines, histograms and cross-file-system
comparisons as plain text, always carrying spread information and refusing to
declare winners the data cannot support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.histogram import LatencyHistogram
from repro.core.results import RepetitionSet, SweepResult
from repro.core.stats import overlapping_confidence_intervals
from repro.core.timeline import IntervalSeries


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table with column alignment."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns as headers")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0]))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def checks_line(checks: Dict[str, bool]) -> str:
    """The one-line PASS/FAIL summary every harness report ends with.

    Shared by all figure/table result classes (they used to hand-roll the
    same join) so the qualitative-claims footer reads identically everywhere.
    """
    return "Qualitative checks: " + ", ".join(
        f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
    )


def ascii_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 15,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A very small scatter/line plot in ASCII for terminal reports."""
    if not points:
        return "(no data)"
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = [f"{y_label} (max {y_max:.1f})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.1f} .. {x_max:.1f}   (min y {y_min:.1f})")
    return "\n".join(lines)


def sweep_table(sweep: SweepResult, parameter_format: str = "{:.0f}") -> str:
    """A Figure-1-style table: parameter, mean, stddev, relative stddev, CI."""
    rows = []
    for parameter, summary in sweep.throughput_summaries():
        rows.append(
            [
                parameter_format.format(parameter),
                f"{summary.mean:.0f}",
                f"{summary.stddev:.0f}",
                f"{summary.relative_stddev_percent:.1f}%",
                f"[{summary.ci95_low:.0f}, {summary.ci95_high:.0f}]",
                summary.n,
            ]
        )
    header = [
        f"{sweep.parameter_name} ({sweep.unit})" if sweep.unit else sweep.parameter_name,
        "mean ops/s",
        "stddev",
        "rel stddev",
        "95% CI",
        "n",
    ]
    table = format_table(header, rows)
    footer = (
        f"\nDynamic range across the sweep: {sweep.dynamic_range():.1f}x; "
        f"fragility index {sweep.fragility():.2f} "
        "(max relative change between adjacent parameter values)"
    )
    return table + footer


def timeline_table(series: IntervalSeries, label: str = "throughput") -> str:
    """A Figure-2-style table of per-interval throughput."""
    rows = [
        [f"{sample.end_s:.0f}", f"{sample.throughput_ops_s:.0f}", f"{sample.mean_latency_ns / 1000:.1f}"]
        for sample in series.samples()
    ]
    table = format_table(["time (s)", f"{label} (ops/s)", "mean latency (us)"], rows)
    return table + f"\nSpread across intervals: {series.spread():.1f}x"


def histogram_report(histogram: LatencyHistogram, title: str = "latency histogram") -> str:
    """A Figure-3-style text rendering of a latency histogram."""
    modes = histogram.modes()
    modality = (
        "uni-modal" if len(modes) <= 1 else ("bi-modal" if len(modes) == 2 else f"{len(modes)}-modal")
    )
    header = (
        f"{title}: n={histogram.total}, mean={histogram.mean_ns() / 1000:.1f} us, "
        f"median={histogram.median_ns() / 1000:.1f} us, p99={histogram.percentile(99) / 1000:.1f} us, "
        f"{modality}, spans {histogram.span_orders_of_magnitude():.1f} orders of magnitude"
    )
    return header + "\n" + histogram.to_ascii()


def comparison_verdict(label_a: str, a: RepetitionSet, label_b: str, b: RepetitionSet) -> str:
    """An honest two-system comparison: refuses to call overlapping results a win."""
    summary_a = a.throughput_summary()
    summary_b = b.throughput_summary()
    if overlapping_confidence_intervals(a.throughputs(), b.throughputs()):
        return (
            f"{label_a} ({summary_a.mean:.0f} ops/s) and {label_b} ({summary_b.mean:.0f} ops/s): "
            "95% confidence intervals overlap -- no demonstrated difference."
        )
    faster, slower = (label_a, label_b) if summary_a.mean > summary_b.mean else (label_b, label_a)
    hi = max(summary_a.mean, summary_b.mean)
    lo = min(summary_a.mean, summary_b.mean)
    return (
        f"{faster} is {hi / lo:.2f}x faster than {slower} "
        f"({hi:.0f} vs {lo:.0f} ops/s, non-overlapping 95% CIs)."
    )


@dataclass
class ReportSection:
    """One titled block of a report."""

    title: str
    body: str


@dataclass
class ReportBuilder:
    """Accumulates sections and renders a complete plain-text report."""

    title: str
    sections: List[ReportSection] = field(default_factory=list)

    def add_section(self, title: str, body: str) -> "ReportBuilder":
        """Append a section; returns self for chaining."""
        self.sections.append(ReportSection(title=title, body=body))
        return self

    def add_sweep(self, title: str, sweep: SweepResult) -> "ReportBuilder":
        """Append a sweep table section."""
        return self.add_section(title, sweep_table(sweep))

    def add_timeline(self, title: str, series: IntervalSeries) -> "ReportBuilder":
        """Append a timeline table section."""
        return self.add_section(title, timeline_table(series))

    def add_histogram(self, title: str, histogram: LatencyHistogram) -> "ReportBuilder":
        """Append a latency histogram section."""
        return self.add_section(title, histogram_report(histogram, title))

    def render(self, width: int = 78) -> str:
        """Render the full report."""
        bar = "=" * width
        lines = [bar, self.title.center(width), bar, ""]
        for section in self.sections:
            lines.append(section.title)
            lines.append("-" * min(width, max(8, len(section.title))))
            lines.append(section.body)
            lines.append("")
        return "\n".join(lines)


def suite_report(suite_result, title: str = "Nano-benchmark suite") -> str:
    """Render a per-dimension, per-file-system comparison of a suite run.

    Every cell shows mean throughput with its relative standard deviation; the
    per-benchmark verdict lines apply the CI-overlap honesty rule pairwise
    against the first file system.
    """
    builder = ReportBuilder(title=title)
    fs_names = suite_result.filesystems()
    for benchmark_name in suite_result.benchmark_names():
        benchmark = suite_result.benchmarks[benchmark_name]
        rows = []
        for fs_name in fs_names:
            repetitions = suite_result.result_for(benchmark_name, fs_name)
            summary = repetitions.throughput_summary()
            rows.append(
                [
                    fs_name,
                    f"{summary.mean:.0f}",
                    f"{summary.relative_stddev_percent:.1f}%",
                    f"[{summary.ci95_low:.0f}, {summary.ci95_high:.0f}]",
                ]
            )
        body = format_table(["file system", "mean ops/s", "rel stddev", "95% CI"], rows)
        verdicts = []
        baseline_fs = fs_names[0]
        baseline = suite_result.result_for(benchmark_name, baseline_fs)
        for fs_name in fs_names[1:]:
            verdicts.append(
                comparison_verdict(
                    baseline_fs, baseline, fs_name, suite_result.result_for(benchmark_name, fs_name)
                )
            )
        primary = benchmark.primary_dimension()
        dimension_note = f"dimension: {primary.title}" if primary is not None else "dimension: (none)"
        builder.add_section(
            f"{benchmark_name} ({dimension_note})",
            benchmark.description + "\n\n" + body + ("\n" + "\n".join(verdicts) if verdicts else ""),
        )
    return builder.render()
