"""Time-series views of a benchmark run.

The paper's Figure 2 (throughput sampled every 10 seconds) and Figure 4
(latency histograms sampled over time) both argue that *when* you measure is
as important as *what* you measure.  These classes collect those views while a
workload runs:

* :class:`IntervalSeries` -- operations, bytes and mean latency per fixed
  interval of simulated time, giving the throughput-vs-time curve;
* :class:`HistogramTimeline` -- a :class:`~repro.core.histogram.LatencyHistogram`
  per interval, giving the histogram-vs-time surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.histogram import DEFAULT_BUCKETS, LatencyHistogram


@dataclass(frozen=True)
class IntervalSample:
    """Aggregated activity within one interval of simulated time."""

    interval_index: int
    start_s: float
    end_s: float
    operations: int
    bytes_moved: int
    mean_latency_ns: float

    @property
    def throughput_ops_s(self) -> float:
        """Operations per second within the interval."""
        duration = self.end_s - self.start_s
        return self.operations / duration if duration > 0 else 0.0

    @property
    def bandwidth_mb_s(self) -> float:
        """Bandwidth within the interval in MiB/s."""
        duration = self.end_s - self.start_s
        return (self.bytes_moved / (1024 * 1024)) / duration if duration > 0 else 0.0


class IntervalSeries:
    """Accumulates per-interval operation counts (the Figure 2 machinery).

    Parameters
    ----------
    interval_s:
        Interval length in simulated seconds (the paper samples every 10 s).
    origin_ns:
        Timestamp of the start of interval 0.
    """

    def __init__(self, interval_s: float = 10.0, origin_ns: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.interval_ns = float(interval_s) * 1e9
        self.origin_ns = float(origin_ns)
        self._ops: List[int] = []
        self._bytes: List[int] = []
        self._latency_sums: List[float] = []

    def _bucket_for(self, end_time_ns: float) -> int:
        index = int((end_time_ns - self.origin_ns) // self.interval_ns)
        return max(0, index)

    def _grow(self, index: int) -> None:
        while len(self._ops) <= index:
            self._ops.append(0)
            self._bytes.append(0)
            self._latency_sums.append(0.0)

    def record(self, end_time_ns: float, latency_ns: float, bytes_moved: int = 0) -> None:
        """Record one completed operation."""
        index = self._bucket_for(end_time_ns)
        self._grow(index)
        self._ops[index] += 1
        self._bytes[index] += bytes_moved
        self._latency_sums[index] += latency_ns

    # ---------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self._ops)

    @property
    def is_empty(self) -> bool:
        """True when nothing has been recorded."""
        return not self._ops

    def samples(self) -> List[IntervalSample]:
        """All intervals as :class:`IntervalSample` objects."""
        result = []
        for index, ops in enumerate(self._ops):
            start_s = (self.origin_ns + index * self.interval_ns) / 1e9
            result.append(
                IntervalSample(
                    interval_index=index,
                    start_s=start_s,
                    end_s=start_s + self.interval_s,
                    operations=ops,
                    bytes_moved=self._bytes[index],
                    mean_latency_ns=self._latency_sums[index] / ops if ops else 0.0,
                )
            )
        return result

    def throughput_series(self) -> List[Tuple[float, float]]:
        """(interval-end time in s, ops/s) pairs -- the Figure 2 curve."""
        return [(s.end_s, s.throughput_ops_s) for s in self.samples()]

    def throughputs(self) -> List[float]:
        """Just the per-interval throughput values."""
        return [s.throughput_ops_s for s in self.samples()]

    def total_operations(self) -> int:
        """Total operations recorded across all intervals."""
        return sum(self._ops)

    def spread(self) -> float:
        """Max/min throughput ratio across non-empty intervals.

        The paper's Figure 2 point in one number: a spread of ~10 means the
        measured "performance" differs by an order of magnitude depending on
        when during the run you look.
        """
        values = [t for t in self.throughputs() if t > 0]
        if len(values) < 2:
            return 1.0
        return max(values) / min(values)

    def tail(self, intervals: int) -> List[float]:
        """Throughputs of the last ``intervals`` intervals (steady-state view)."""
        if intervals <= 0:
            raise ValueError("intervals must be positive")
        return self.throughputs()[-intervals:]

    def truncate(self, max_intervals: int) -> int:
        """Drop trailing intervals beyond ``max_intervals``.

        Benchmark runs end when the virtual clock passes the configured
        duration, so the final operation can spill a handful of samples into
        one extra, mostly-empty interval; runners truncate to the number of
        *complete* intervals so per-interval throughputs stay comparable.
        Returns the number of intervals dropped.
        """
        if max_intervals <= 0:
            raise ValueError("max_intervals must be positive")
        dropped = max(0, len(self._ops) - max_intervals)
        if dropped:
            del self._ops[max_intervals:]
            del self._bytes[max_intervals:]
            del self._latency_sums[max_intervals:]
        return dropped


class HistogramTimeline:
    """A latency histogram per interval of simulated time (Figure 4).

    Parameters
    ----------
    interval_s:
        Interval length in simulated seconds (the paper uses 10 s snapshots).
    buckets:
        Number of log2 buckets per histogram.
    """

    def __init__(self, interval_s: float = 10.0, buckets: int = DEFAULT_BUCKETS, origin_ns: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.interval_ns = float(interval_s) * 1e9
        self.origin_ns = float(origin_ns)
        self.buckets = buckets
        self._histograms: List[LatencyHistogram] = []

    def _grow(self, index: int) -> None:
        while len(self._histograms) <= index:
            self._histograms.append(LatencyHistogram(self.buckets))

    def record(self, end_time_ns: float, latency_ns: float) -> None:
        """Record one completed operation into its interval's histogram."""
        index = max(0, int((end_time_ns - self.origin_ns) // self.interval_ns))
        self._grow(index)
        self._histograms[index].add(latency_ns)

    def __len__(self) -> int:
        return len(self._histograms)

    def histogram_at(self, index: int) -> LatencyHistogram:
        """Histogram of interval ``index``."""
        return self._histograms[index]

    def histograms(self) -> List[LatencyHistogram]:
        """All per-interval histograms, oldest first."""
        return list(self._histograms)

    def interval_times_s(self) -> List[float]:
        """End time (in s) of each interval."""
        return [
            (self.origin_ns + (index + 1) * self.interval_ns) / 1e9
            for index in range(len(self._histograms))
        ]

    def surface(self) -> List[List[float]]:
        """The Figure 4 surface: rows are intervals, columns are bucket percentages."""
        return [histogram.percentages() for histogram in self._histograms]

    def modes_over_time(self, min_fraction: float = 0.05) -> List[List[int]]:
        """Peak bucket indices per interval (how the disk peak fades over time)."""
        return [histogram.modes(min_fraction=min_fraction) for histogram in self._histograms]

    def bimodal_fraction(self, min_fraction: float = 0.05) -> float:
        """Fraction of (non-empty) intervals whose distribution is bi-modal.

        The paper observes the distribution is bi-modal "during most of the
        benchmark's run" for the 256 MB file; this is that statement as a
        number.
        """
        non_empty = [h for h in self._histograms if not h.is_empty]
        if not non_empty:
            return 0.0
        bimodal = sum(1 for h in non_empty if h.is_bimodal(min_fraction=min_fraction))
        return bimodal / len(non_empty)

    def truncate(self, max_intervals: int) -> int:
        """Drop trailing intervals beyond ``max_intervals`` (see IntervalSeries.truncate)."""
        if max_intervals <= 0:
            raise ValueError("max_intervals must be positive")
        dropped = max(0, len(self._histograms) - max_intervals)
        if dropped:
            del self._histograms[max_intervals:]
        return dropped

    def merged(self) -> LatencyHistogram:
        """Histogram of the whole run (all intervals merged)."""
        merged = LatencyHistogram(self.buckets)
        for histogram in self._histograms:
            merged = merged.merge(histogram)
        return merged
