"""The measurement protocol: repetitions, cache-state control, noise injection.

The runner is where the framework encodes the paper's methodological
prescriptions:

* every configuration is run several times and reported with spread, never as
  one number;
* the cache state at the start of measurement is an explicit, named choice
  (:class:`WarmupMode`), not an accident of whatever ran before;
* small, realistic environmental perturbations (a few MB of page cache, a
  percent of CPU speed) are injected *on purpose* between repetitions, so
  that configurations whose results depend on "just a few megabytes" show up
  with the huge standard deviations they deserve (Section 3.1) instead of
  accidentally looking stable;
* the measured window is sampled in intervals so warm-up and steady state can
  be told apart after the fact;
* every repetition is a pure function of its configuration and effective seed
  (``config.seed + repetition``), which is what lets
  :mod:`repro.core.parallel` fan repetitions out across processes -- or skip
  them via its result cache -- with bit-identical results
  (:func:`run_single_repetition` is the picklable entry point).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.core.histogram import LatencyHistogram
from repro.core.results import RepetitionSet, RunResult
from repro.core.steady_state import SteadyStateDetector
from repro.core.timeline import HistogramTimeline, IntervalSeries
from repro.fs.stack import StorageStack, build_stack
from repro.obs.profile import phase as profile_phase
from repro.obs.trace import Tracer
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.spec import OpRecord, WorkloadEngine, WorkloadSpec

#: Event-ring capacity of the tracer the runner attaches for traced windows.
#: Attribution totals are exact regardless of this bound -- only the raw
#: event list is ring-buffered.
TRACE_RING_CAPACITY = 65536


class WarmupMode(str, Enum):
    """How the cache is conditioned before the measured window starts."""

    #: Measure from a cold cache (warm-up is part of the measurement).
    NONE = "none"
    #: Sequentially pre-read the fileset (up to cache capacity) outside
    #: measured time, then measure: the paper's "steady state" protocol for
    #: files that fit in memory, without spending 19 simulated minutes.
    PREWARM = "prewarm"
    #: Run the workload itself for ``warmup_s`` before measuring.
    DURATION = "duration"
    #: Run the workload until interval throughput is statistically steady
    #: (or ``max_warmup_s`` is reached), then measure.
    STEADY_STATE = "steady_state"


@dataclass(frozen=True)
class EnvironmentNoise:
    """Run-to-run environmental perturbation injected by the runner.

    ``cache_noise_bytes`` models the paper's observation that "it is
    difficult to control the availability of just a few megabytes from one
    benchmark run to another": each repetition's OS memory reservation is
    shifted by a uniform amount in ``[-cache_noise_bytes, +cache_noise_bytes]``.
    ``cpu_noise_sigma`` applies a log-normal factor to CPU costs per
    repetition (background daemons, frequency scaling).
    """

    cache_noise_bytes: int = 6 * 1024 * 1024
    cpu_noise_sigma: float = 0.01
    enabled: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical noise parameters."""
        if self.cache_noise_bytes < 0:
            raise ValueError("cache_noise_bytes must be non-negative")
        if self.cpu_noise_sigma < 0:
            raise ValueError("cpu_noise_sigma must be non-negative")


@dataclass
class BenchmarkConfig:
    """Parameters of the measurement protocol.

    Attributes
    ----------
    duration_s:
        Length of the measured window in simulated seconds.
    max_ops:
        Optional cap on measured operations (whichever of duration/ops is
        reached first ends the window).
    repetitions:
        Number of repetitions per configuration.
    warmup_mode, warmup_s, max_warmup_s:
        Cache conditioning before measurement (see :class:`WarmupMode`).
    interval_s:
        Interval of the throughput timeline.
    histogram_interval_s:
        Interval of the histogram timeline; ``None`` disables it.
    collect_raw_latencies:
        Keep every latency sample (memory heavy; off by default).
    cold_cache:
        Drop caches between repetitions so each starts from the same state.
    seed:
        Base seed; repetition ``i`` uses ``seed + i`` for both the stack and
        the workload randomness.
    noise:
        Environmental perturbation injected per repetition.
    clients:
        Number of concurrent client sessions sharing the stack.  ``1`` (the
        default) is the legacy serial path, bit-identical to every release
        before the axis existed; ``>1`` interleaves hash-seeded copies of
        the workload through the deterministic virtual-time event loop
        (:mod:`repro.core.concurrency`) and reports per-client metrics on
        the result.
    trace:
        Attach a :class:`repro.obs.Tracer` for the measured window and
        attach the resulting latency attribution and event ring to the
        result.  Tracing is non-perturbing: the measurement (and its
        serialized payload, and its cache key) is bit-identical with this
        on or off, which is why the flag is stripped from cache keys.
    """

    duration_s: float = 20.0
    max_ops: Optional[int] = None
    repetitions: int = 5
    warmup_mode: WarmupMode = WarmupMode.PREWARM
    warmup_s: float = 0.0
    max_warmup_s: float = 600.0
    interval_s: float = 1.0
    histogram_interval_s: Optional[float] = None
    collect_raw_latencies: bool = False
    cold_cache: bool = True
    seed: int = 42
    noise: EnvironmentNoise = field(default_factory=EnvironmentNoise)
    clients: int = 1
    trace: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` for impossible configurations."""
        if self.duration_s <= 0 and self.max_ops is None:
            raise ValueError("need a positive duration_s or a max_ops limit")
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.histogram_interval_s is not None and self.histogram_interval_s <= 0:
            raise ValueError("histogram_interval_s must be positive when set")
        if self.warmup_mode is WarmupMode.DURATION and self.warmup_s <= 0:
            raise ValueError("warmup_s must be positive for DURATION warm-up")
        if self.max_warmup_s <= 0:
            raise ValueError("max_warmup_s must be positive")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        self.noise.validate()

    def with_repetitions(self, repetitions: int) -> "BenchmarkConfig":
        """Copy with a different repetition count."""
        return replace(self, repetitions=repetitions)


def run_single_repetition(
    fs_type: str,
    spec: WorkloadSpec,
    repetition: int = 0,
    testbed: Optional[TestbedConfig] = None,
    config: Optional[BenchmarkConfig] = None,
    snapshot_path: Optional[str] = None,
) -> "RunResult":
    """Run one repetition of ``spec`` as a pure function of its arguments.

    This is the picklable entry point used by the parallel executor
    (:mod:`repro.core.parallel`): it builds a fresh
    :class:`BenchmarkRunner` with the default stack factory and returns
    ``runner.run_once(spec, repetition)``.  Because the runner derives every
    random source from ``config.seed + repetition``, calling this in any
    process, in any order, yields results bit-identical to the serial loop
    in :meth:`BenchmarkRunner.run`.

    ``snapshot_path`` is the aging axis: when given, every repetition starts
    from the aged state stored in that
    :class:`~repro.aging.snapshot.StateSnapshot` file instead of a
    freshly-formatted stack.  Restoration is itself deterministic, so the
    purity (and therefore parallel/caching safety) of this function is
    unchanged -- the snapshot fingerprint simply becomes part of the
    measurement's identity (see :func:`repro.core.parallel.cache_key`).
    """
    stack_factory = None
    if snapshot_path is not None:
        # Imported lazily: the aging subsystem sits above the core layer.
        from repro.aging.snapshot import snapshot_stack_factory

        restore_factory = snapshot_stack_factory(snapshot_path)

        def stack_factory(fs_type, testbed, seed, cpu_factor):
            # Bracketed so the snapshot restoration shows up as its own
            # wall-clock phase, nested inside (and subtracted from) the
            # runner's ``stack-build`` bracket.
            with profile_phase("snapshot-restore"):
                return restore_factory(fs_type, testbed, seed, cpu_factor)

    runner = BenchmarkRunner(
        fs_type=fs_type, testbed=testbed, config=config, stack_factory=stack_factory
    )
    return runner.run_once(spec, repetition)


class _Recorder:
    """Collects per-operation records during the measured window."""

    def __init__(self, config: BenchmarkConfig, origin_ns: float) -> None:
        self.histogram = LatencyHistogram()
        self.timeline = IntervalSeries(interval_s=config.interval_s, origin_ns=origin_ns)
        self.histogram_timeline = (
            HistogramTimeline(interval_s=config.histogram_interval_s, origin_ns=origin_ns)
            if config.histogram_interval_s is not None
            else None
        )
        self.raw: Optional[List[float]] = [] if config.collect_raw_latencies else None
        self.operations = 0
        self.enabled = True

    def __call__(self, record: OpRecord) -> None:
        if not self.enabled:
            return
        self.operations += 1
        self.histogram.add(record.latency_ns)
        self.timeline.record(record.end_time_ns, record.latency_ns, record.bytes_moved)
        if self.histogram_timeline is not None:
            self.histogram_timeline.record(record.end_time_ns, record.latency_ns)
        if self.raw is not None:
            self.raw.append(record.latency_ns)


def _flash_environment(stack: StorageStack) -> Dict[str, float]:
    """Measured-window flash telemetry for the result's environment dict.

    Stateful devices (the FTL SSD) report their flash counters through the
    stack's metrics registry; the keys are absent for stateless devices so
    existing results (and cached entries) keep their exact payloads.
    """
    if not callable(getattr(stack.device.model, "export_state", None)):
        return {}
    device = stack.metrics_registry().snapshot()["device"]
    return {
        "device_write_amplification": device["write_amplification"],
        "device_pages_programmed": device["pages_programmed"],
        "device_pages_moved": device["pages_moved"],
        "device_erases": device["erases"],
        "device_gc_time_ns": device["gc_time_ns"],
        "device_discards": device["discards"],
    }


def _session_recorder(session, recorder: _Recorder):
    """An ``on_op`` callback that feeds both the shared recorder and one
    session's exact per-client sample list."""

    def _record(record: OpRecord) -> None:
        recorder(record)
        session.operations += 1
        session.latencies_ns.append(record.latency_ns)

    return _record


class BenchmarkRunner:
    """Runs a workload spec against a file system under the measurement protocol.

    Parameters
    ----------
    fs_type:
        File system to mount (``"ext2"``, ``"ext3"``, ``"ext4"``, ``"xfs"``).
    testbed:
        Simulated machine description (defaults to the paper's testbed).
    config:
        Measurement protocol parameters.
    stack_factory:
        Override for how stacks are built (used by tests and by ablation
        benchmarks that need custom readahead policies etc.).  The callable
        receives ``(fs_type, testbed, seed, cpu_speed_factor)``.
    """

    def __init__(
        self,
        fs_type: str = "ext2",
        testbed: Optional[TestbedConfig] = None,
        config: Optional[BenchmarkConfig] = None,
        stack_factory: Optional[Callable[[str, TestbedConfig, int, float], StorageStack]] = None,
    ) -> None:
        self.fs_type = fs_type
        self.testbed = testbed if testbed is not None else paper_testbed()
        self.config = config if config is not None else BenchmarkConfig()
        self.config.validate()
        self.testbed.validate()
        self._stack_factory = stack_factory or self._default_stack_factory

    @staticmethod
    def _default_stack_factory(
        fs_type: str, testbed: TestbedConfig, seed: int, cpu_speed_factor: float
    ) -> StorageStack:
        return build_stack(
            fs_type=fs_type, testbed=testbed, seed=seed, cpu_speed_factor=cpu_speed_factor
        )

    # ----------------------------------------------------------- public API
    def run(self, spec: WorkloadSpec, label: Optional[str] = None) -> RepetitionSet:
        """Run all repetitions of ``spec``; returns the populated repetition set."""
        repetitions = RepetitionSet(label=label or f"{spec.name}@{self.fs_type}")
        for repetition in range(self.config.repetitions):
            repetitions.add(self.run_once(spec, repetition))
        return repetitions

    def run_once(self, spec: WorkloadSpec, repetition: int = 0) -> RunResult:
        """Run a single repetition of ``spec`` and return its :class:`RunResult`.

        ``config.clients > 1`` dispatches to the multi-client virtual-time
        event loop; one client stays on this serial path, untouched, so the
        legacy bit-identity guarantee is structural rather than hoped-for.
        """
        if self.config.clients > 1:
            return self._run_once_concurrent(spec, repetition)
        config = self.config
        seed = config.seed + repetition
        noise_rng = random.Random(seed * 7919 + 13)

        testbed, cpu_factor, effective_cache = self._perturbed_environment(noise_rng)
        # The profile brackets observe wall time only (see repro.obs.profile);
        # they are no-ops unless a profiler is enabled and never touch the
        # virtual clock, so the measurement is identical with or without them.
        with profile_phase("stack-build"):
            stack = self._stack_factory(self.fs_type, testbed, seed, cpu_factor)

        engine = WorkloadEngine(stack, spec, seed=seed)
        with profile_phase("setup"):
            engine.setup()
            if config.cold_cache:
                stack.drop_caches()

        warmup_start_ns = stack.clock.now_ns
        with profile_phase("warmup"):
            self._warm_up(stack, engine, spec)
        warmup_duration_s = (stack.clock.now_ns - warmup_start_ns) / 1e9

        origin_ns = stack.clock.now_ns
        recorder = _Recorder(config, origin_ns)
        engine.on_op = recorder
        stack.reset_statistics()
        tracer = self._attach_tracer(stack)

        duration = config.duration_s if config.duration_s > 0 else None
        with profile_phase("measured-run"):
            engine.run(duration_s=duration, max_ops=config.max_ops)
        engine.on_op = None
        if tracer is not None:
            stack.attach_tracer(None)

        measured_duration_s = (stack.clock.now_ns - origin_ns) / 1e9
        throughput = recorder.operations / measured_duration_s if measured_duration_s > 0 else 0.0

        # The last operation may spill past the nominal duration into a
        # mostly-empty extra interval; keep only complete intervals.
        complete_intervals = int(measured_duration_s / config.interval_s)
        if complete_intervals >= 1:
            recorder.timeline.truncate(complete_intervals)
        if recorder.histogram_timeline is not None and config.histogram_interval_s:
            complete_histograms = int(measured_duration_s / config.histogram_interval_s)
            if complete_histograms >= 1:
                recorder.histogram_timeline.truncate(complete_histograms)

        environment = {
            "page_cache_bytes": float(effective_cache),
            "cpu_speed_factor": cpu_factor,
        }
        environment.update(_flash_environment(stack))

        return RunResult(
            workload_name=spec.name,
            fs_name=stack.fs_name,
            repetition=repetition,
            seed=seed,
            measured_duration_s=measured_duration_s,
            warmup_duration_s=warmup_duration_s,
            operations=recorder.operations,
            throughput_ops_s=throughput,
            histogram=recorder.histogram,
            timeline=recorder.timeline,
            histogram_timeline=recorder.histogram_timeline,
            raw_latencies_ns=recorder.raw,
            cache_hit_ratio=stack.cache.stats.hit_ratio,
            device_reads=stack.device.stats.read_requests,
            device_writes=stack.device.stats.write_requests,
            bytes_read=stack.vfs.stats.bytes_read,
            bytes_written=stack.vfs.stats.bytes_written,
            environment=environment,
            attribution=tracer.attribution.to_dict() if tracer is not None else None,
            trace_events=tracer.events_list() if tracer is not None else None,
        )

    def _run_once_concurrent(self, spec: WorkloadSpec, repetition: int) -> RunResult:
        """One repetition with ``config.clients`` sessions contending on one stack.

        Mirrors :meth:`run_once` stage for stage -- perturbed environment,
        setup outside measured time, warm-up, measured window, truncation --
        but drives the window through
        :func:`repro.core.concurrency.run_window` and additionally collects
        exact per-client latencies into ``RunResult.client_metrics``.
        """
        from repro.core.concurrency import build_sessions, client_metrics, run_window

        config = self.config
        seed = config.seed + repetition
        noise_rng = random.Random(seed * 7919 + 13)

        testbed, cpu_factor, effective_cache = self._perturbed_environment(noise_rng)
        with profile_phase("stack-build"):
            stack = self._stack_factory(self.fs_type, testbed, seed, cpu_factor)

        sessions = build_sessions(stack, spec, base_seed=seed, clients=config.clients)
        with profile_phase("setup"):
            for session in sessions:
                session.engine.setup()
            if config.cold_cache:
                stack.drop_caches()

        warmup_start_ns = stack.clock.now_ns
        with profile_phase("warmup"):
            self._warm_up_concurrent(stack, sessions)
        warmup_duration_s = (stack.clock.now_ns - warmup_start_ns) / 1e9

        origin_ns = stack.clock.now_ns
        recorder = _Recorder(config, origin_ns)
        for session in sessions:
            session.engine.on_op = _session_recorder(session, recorder)
        stack.reset_statistics()
        tracer = self._attach_tracer(stack)

        duration = config.duration_s if config.duration_s > 0 else None
        with profile_phase("measured-run"):
            run_window(
                sessions, stack.clock, duration_s=duration, max_ops=config.max_ops, tracer=tracer
            )
        for session in sessions:
            session.engine.on_op = None
        if tracer is not None:
            stack.attach_tracer(None)

        measured_duration_s = (stack.clock.now_ns - origin_ns) / 1e9
        throughput = recorder.operations / measured_duration_s if measured_duration_s > 0 else 0.0

        complete_intervals = int(measured_duration_s / config.interval_s)
        if complete_intervals >= 1:
            recorder.timeline.truncate(complete_intervals)
        if recorder.histogram_timeline is not None and config.histogram_interval_s:
            complete_histograms = int(measured_duration_s / config.histogram_interval_s)
            if complete_histograms >= 1:
                recorder.histogram_timeline.truncate(complete_histograms)

        environment = {
            "page_cache_bytes": float(effective_cache),
            "cpu_speed_factor": cpu_factor,
            "clients": float(config.clients),
        }
        environment.update(_flash_environment(stack))

        return RunResult(
            workload_name=spec.name,
            fs_name=stack.fs_name,
            repetition=repetition,
            seed=seed,
            measured_duration_s=measured_duration_s,
            warmup_duration_s=warmup_duration_s,
            operations=recorder.operations,
            throughput_ops_s=throughput,
            histogram=recorder.histogram,
            timeline=recorder.timeline,
            histogram_timeline=recorder.histogram_timeline,
            raw_latencies_ns=recorder.raw,
            cache_hit_ratio=stack.cache.stats.hit_ratio,
            device_reads=stack.device.stats.read_requests,
            device_writes=stack.device.stats.write_requests,
            bytes_read=stack.vfs.stats.bytes_read,
            bytes_written=stack.vfs.stats.bytes_written,
            environment=environment,
            client_metrics=client_metrics(
                [session.latencies_ns for session in sessions], measured_duration_s
            ),
            attribution=tracer.attribution.to_dict() if tracer is not None else None,
            trace_events=tracer.events_list() if tracer is not None else None,
        )

    # ------------------------------------------------------------- internals
    def _attach_tracer(self, stack: StorageStack) -> Optional[Tracer]:
        """Attach a tracer for the measured window when ``config.trace`` is on.

        Returns ``None`` (and touches nothing) otherwise, so the untraced
        path stays structurally identical to every release before tracing
        existed.
        """
        if not self.config.trace:
            return None
        tracer = Tracer(stack.clock, capacity=TRACE_RING_CAPACITY)
        stack.attach_tracer(tracer)
        return tracer

    def _perturbed_environment(self, rng: random.Random):
        """Apply environmental noise to the testbed for one repetition."""
        noise = self.config.noise
        testbed = self.testbed
        cpu_factor = 1.0
        if noise.enabled and noise.cpu_noise_sigma > 0:
            cpu_factor = rng.lognormvariate(0.0, noise.cpu_noise_sigma)
        if noise.enabled and noise.cache_noise_bytes > 0:
            delta = rng.randint(-noise.cache_noise_bytes, noise.cache_noise_bytes)
            reserved = min(
                max(0, testbed.os_reserved_bytes + delta), testbed.ram_bytes - testbed.page_size
            )
            testbed = replace(testbed, os_reserved_bytes=reserved)
        return testbed, cpu_factor, testbed.page_cache_bytes

    def _warm_up(self, stack: StorageStack, engine: WorkloadEngine, spec: WorkloadSpec) -> None:
        """Condition the cache according to the configured warm-up mode."""
        config = self.config
        mode = config.warmup_mode
        if mode is WarmupMode.NONE:
            return
        if mode is WarmupMode.PREWARM:
            self._prewarm_sequential(stack, engine)
            return
        if mode is WarmupMode.DURATION:
            engine.run(duration_s=config.warmup_s)
            return
        # STEADY_STATE: run in interval-sized chunks until stable.
        detector = SteadyStateDetector()
        elapsed = 0.0
        chunk = max(config.interval_s, 1.0)
        while elapsed < config.max_warmup_s:
            start_ns = stack.clock.now_ns
            ops_before = engine.ops_executed
            engine.run(duration_s=chunk)
            interval_s = (stack.clock.now_ns - start_ns) / 1e9
            ops = engine.ops_executed - ops_before
            elapsed += interval_s
            if detector.observe(ops / interval_s if interval_s > 0 else 0.0):
                return

    def _warm_up_concurrent(self, stack: StorageStack, sessions) -> None:
        """The warm-up protocol with every client participating.

        PREWARM pre-reads each client's fileset in client order (stopping,
        as ever, once the shared cache is full); DURATION and STEADY_STATE
        run the interleaved event loop itself, so warm-up traffic contends
        exactly like measured traffic will.
        """
        from repro.core.concurrency import run_window

        config = self.config
        mode = config.warmup_mode
        if mode is WarmupMode.NONE:
            return
        if mode is WarmupMode.PREWARM:
            for session in sessions:
                self._prewarm_sequential(stack, session.engine)
            return
        if mode is WarmupMode.DURATION:
            run_window(sessions, stack.clock, duration_s=config.warmup_s)
            return
        detector = SteadyStateDetector()
        elapsed = 0.0
        chunk = max(config.interval_s, 1.0)
        while elapsed < config.max_warmup_s:
            start_ns = stack.clock.now_ns
            ops = run_window(sessions, stack.clock, duration_s=chunk)
            interval_s = (stack.clock.now_ns - start_ns) / 1e9
            elapsed += interval_s
            if detector.observe(ops / interval_s if interval_s > 0 else 0.0):
                return

    def _prewarm_sequential(self, stack: StorageStack, engine: WorkloadEngine) -> None:
        """Sequentially read the fileset into the cache, outside measured time.

        Reads stop once the page cache is full -- warming more than fits
        would only churn the cache.  Afterwards the virtual clock keeps its
        value (warm-up time is reported separately) but device backlog is
        drained so measurement does not start with a busy device.
        """
        vfs = stack.vfs
        fileset = engine.fileset
        if fileset is None:
            return
        capacity_pages = stack.cache.capacity_pages
        chunk = 1024 * 1024
        for index in range(len(fileset)):
            if len(stack.cache) >= capacity_pages:
                break
            size = fileset.size_of(index)
            if size <= 0:
                continue
            fd = vfs.open_uncharged(fileset.path_of(index))
            offset = 0
            while offset < size and len(stack.cache) < capacity_pages:
                vfs.read(fd, min(chunk, size - offset), offset=offset)
                offset += chunk
            vfs.close_uncharged(fd)
        # Drain outstanding asynchronous device work before measuring.
        backlog = vfs._device_busy_until_ns - stack.clock.now_ns
        if backlog > 0:
            stack.clock.advance(backlog)
