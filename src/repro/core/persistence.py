"""Saving and loading benchmark results.

"In the interest of full disclosure, let's report a range of values that span
multiple dimensions" -- which only works if results can leave the machine
they were measured on.  This module serialises the result containers
(:class:`~repro.core.results.RunResult`, :class:`RepetitionSet`,
:class:`SweepResult`) to plain JSON so that sweeps can be archived alongside
a paper, diffed between runs, or re-analysed without re-simulation.

The format is intentionally boring: a top-level ``format``/``version`` pair,
then nested dictionaries mirroring the dataclasses.  Histograms are stored as
their bucket counts, timelines as per-interval operation/byte/latency arrays;
everything needed by the analysis and reporting layers round-trips exactly.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, TextIO, Union

from repro.core.histogram import LatencyHistogram
from repro.core.results import RepetitionSet, RunResult, SweepResult
from repro.core.timeline import HistogramTimeline, IntervalSeries

FORMAT_NAME = "fsbench-rocket-results"
FORMAT_VERSION = 1


# --------------------------------------------------------------------------- encode
def _histogram_to_dict(histogram: LatencyHistogram) -> Dict:
    return {
        "counts": list(histogram.counts),
        "total": histogram.total,
        "sum_ns": histogram.sum_ns,
        "min_ns": histogram.min_ns if histogram.total else None,
        "max_ns": histogram.max_ns,
    }


def _timeline_to_dict(series: IntervalSeries) -> Dict:
    return {
        "interval_s": series.interval_s,
        "origin_ns": series.origin_ns,
        "ops": list(series._ops),
        "bytes": list(series._bytes),
        "latency_sums": list(series._latency_sums),
    }


def _histogram_timeline_to_dict(timeline: HistogramTimeline) -> Dict:
    return {
        "interval_s": timeline.interval_s,
        "origin_ns": timeline.origin_ns,
        "buckets": timeline.buckets,
        "histograms": [_histogram_to_dict(histogram) for histogram in timeline.histograms()],
    }


def run_result_to_dict(run: RunResult) -> Dict:
    """Serialise one :class:`RunResult` to a JSON-compatible dictionary.

    ``client_metrics`` is written only when present (multi-client runs), so
    every legacy single-client payload -- including each entry of the
    parallel executor's result cache -- stays byte-identical.

    ``attribution`` and ``trace_events`` (see :mod:`repro.obs`) are
    deliberately **never** serialised: they are derived evidence,
    reproducible on demand by re-running the same unit traced, and keeping
    them out of the payload is what makes traced and untraced runs
    byte-identical on disk (and lets them share one cache entry).  The keys
    below are enumerated explicitly -- not reflected from the dataclass --
    precisely so new in-memory fields stay out of the format by default.
    """
    payload = {
        "workload_name": run.workload_name,
        "fs_name": run.fs_name,
        "repetition": run.repetition,
        "seed": run.seed,
        "measured_duration_s": run.measured_duration_s,
        "warmup_duration_s": run.warmup_duration_s,
        "operations": run.operations,
        "throughput_ops_s": run.throughput_ops_s,
        "cache_hit_ratio": run.cache_hit_ratio,
        "device_reads": run.device_reads,
        "device_writes": run.device_writes,
        "bytes_read": run.bytes_read,
        "bytes_written": run.bytes_written,
        "environment": dict(run.environment),
        "histogram": _histogram_to_dict(run.histogram),
        "timeline": _timeline_to_dict(run.timeline),
        "histogram_timeline": (
            _histogram_timeline_to_dict(run.histogram_timeline)
            if run.histogram_timeline is not None
            else None
        ),
        "raw_latencies_ns": list(run.raw_latencies_ns) if run.raw_latencies_ns is not None else None,
    }
    if run.client_metrics is not None:
        payload["client_metrics"] = [dict(row) for row in run.client_metrics]
    return payload


def repetition_set_to_dict(repetitions: RepetitionSet) -> Dict:
    """Serialise a :class:`RepetitionSet`."""
    return {
        "label": repetitions.label,
        "runs": [run_result_to_dict(run) for run in repetitions.runs],
    }


def sweep_to_dict(sweep: SweepResult) -> Dict:
    """Serialise a :class:`SweepResult`."""
    return {
        "parameter_name": sweep.parameter_name,
        "unit": sweep.unit,
        "points": [
            {"parameter": parameter, "repetitions": repetition_set_to_dict(sweep.points[parameter])}
            for parameter in sweep.parameters()
        ],
    }


# --------------------------------------------------------------------------- decode
def _histogram_from_dict(payload: Dict) -> LatencyHistogram:
    histogram = LatencyHistogram(buckets=len(payload["counts"]))
    histogram.counts = [int(count) for count in payload["counts"]]
    histogram.total = int(payload["total"])
    histogram.sum_ns = float(payload["sum_ns"])
    histogram.max_ns = float(payload["max_ns"])
    minimum = payload.get("min_ns")
    histogram.min_ns = float(minimum) if minimum is not None else float("inf")
    return histogram


def _timeline_from_dict(payload: Dict) -> IntervalSeries:
    series = IntervalSeries(interval_s=payload["interval_s"], origin_ns=payload["origin_ns"])
    series._ops = [int(value) for value in payload["ops"]]
    series._bytes = [int(value) for value in payload["bytes"]]
    series._latency_sums = [float(value) for value in payload["latency_sums"]]
    return series


def _histogram_timeline_from_dict(payload: Dict) -> HistogramTimeline:
    timeline = HistogramTimeline(
        interval_s=payload["interval_s"], buckets=payload["buckets"], origin_ns=payload["origin_ns"]
    )
    timeline._histograms = [_histogram_from_dict(entry) for entry in payload["histograms"]]
    return timeline


def run_result_from_dict(payload: Dict) -> RunResult:
    """Reconstruct a :class:`RunResult` from its dictionary form."""
    histogram_timeline = payload.get("histogram_timeline")
    raw = payload.get("raw_latencies_ns")
    clients = payload.get("client_metrics")
    return RunResult(
        workload_name=payload["workload_name"],
        fs_name=payload["fs_name"],
        repetition=int(payload["repetition"]),
        seed=int(payload["seed"]),
        measured_duration_s=float(payload["measured_duration_s"]),
        warmup_duration_s=float(payload["warmup_duration_s"]),
        operations=int(payload["operations"]),
        throughput_ops_s=float(payload["throughput_ops_s"]),
        histogram=_histogram_from_dict(payload["histogram"]),
        timeline=_timeline_from_dict(payload["timeline"]),
        histogram_timeline=(
            _histogram_timeline_from_dict(histogram_timeline) if histogram_timeline else None
        ),
        raw_latencies_ns=[float(value) for value in raw] if raw is not None else None,
        cache_hit_ratio=float(payload["cache_hit_ratio"]),
        device_reads=int(payload["device_reads"]),
        device_writes=int(payload["device_writes"]),
        bytes_read=int(payload["bytes_read"]),
        bytes_written=int(payload["bytes_written"]),
        environment={key: float(value) for key, value in payload["environment"].items()},
        client_metrics=(
            [{key: float(value) for key, value in row.items()} for row in clients]
            if clients is not None
            else None
        ),
    )


def repetition_set_from_dict(payload: Dict) -> RepetitionSet:
    """Reconstruct a :class:`RepetitionSet`."""
    return RepetitionSet(
        label=payload["label"],
        runs=[run_result_from_dict(entry) for entry in payload["runs"]],
    )


def sweep_from_dict(payload: Dict) -> SweepResult:
    """Reconstruct a :class:`SweepResult`."""
    sweep = SweepResult(parameter_name=payload["parameter_name"], unit=payload.get("unit", ""))
    for point in payload["points"]:
        sweep.add(float(point["parameter"]), repetition_set_from_dict(point["repetitions"]))
    return sweep


# --------------------------------------------------------------------------- files
def _wrap(kind: str, payload: Dict) -> Dict:
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": kind,
        "data": payload,
    }


def _unwrap(document: Dict, expected_kind: Optional[str] = None) -> Dict:
    if document.get("format") != FORMAT_NAME:
        raise ValueError(f"not a {FORMAT_NAME} document")
    if int(document.get("version", -1)) > FORMAT_VERSION:
        raise ValueError(
            f"result file version {document.get('version')} is newer than supported ({FORMAT_VERSION})"
        )
    if expected_kind is not None and document.get("kind") != expected_kind:
        raise ValueError(f"expected a {expected_kind!r} document, found {document.get('kind')!r}")
    return document["data"]


def _write(document: Dict, destination: Union[str, TextIO]) -> None:
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
    else:
        json.dump(document, destination, indent=2, sort_keys=True)


def _read(source: Union[str, TextIO]) -> Dict:
    if isinstance(source, str):
        with open(source, "r") as handle:
            return json.load(handle)
    return json.load(source)


def canonical_run_payload(run: RunResult) -> bytes:
    """The canonical byte encoding of one run, as stored in a result pack.

    This is the same wrapped document :func:`save_run_result` writes, dumped
    compactly with sorted keys: a pure function of the run's serialised
    fields, so equal runs always produce equal bytes.  The packed store
    (:mod:`repro.store`) leans on that for its dedup/conflict rule -- a cache
    key may appear in two shards only with byte-identical payloads -- which
    is why every pack writer must funnel through here rather than invent its
    own encoder (enforced by lint rule KEY002).
    """
    document = _wrap("run_result", run_result_to_dict(run))
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def run_from_payload(payload: bytes) -> RunResult:
    """Reconstruct a run from its :func:`canonical_run_payload` bytes."""
    return run_result_from_dict(_unwrap(json.loads(payload.decode("utf-8")), "run_result"))


def save_run_result(run: RunResult, destination: Union[str, TextIO]) -> None:
    """Write a single run (one repetition) to a JSON file or file object.

    This is the storage format of the parallel executor's result cache
    (:mod:`repro.core.parallel`): one file per measured cell.
    """
    _write(_wrap("run_result", run_result_to_dict(run)), destination)


def load_run_result(source: Union[str, TextIO]) -> RunResult:
    """Read a single run written by :func:`save_run_result`."""
    return run_result_from_dict(_unwrap(_read(source), "run_result"))


def save_repetitions(repetitions: RepetitionSet, destination: Union[str, TextIO]) -> None:
    """Write a repetition set to a JSON file or file object."""
    _write(_wrap("repetition_set", repetition_set_to_dict(repetitions)), destination)


def load_repetitions(source: Union[str, TextIO]) -> RepetitionSet:
    """Read a repetition set written by :func:`save_repetitions`."""
    return repetition_set_from_dict(_unwrap(_read(source), "repetition_set"))


def save_sweep(sweep: SweepResult, destination: Union[str, TextIO]) -> None:
    """Write a sweep (e.g. a Figure 1 regeneration) to a JSON file or file object."""
    _write(_wrap("sweep", sweep_to_dict(sweep)), destination)


def load_sweep(source: Union[str, TextIO]) -> SweepResult:
    """Read a sweep written by :func:`save_sweep`."""
    return sweep_from_dict(_unwrap(_read(source), "sweep"))
