"""Tidy result frames: the lingua franca of the analysis layer.

The paper's complaint about single-number reporting has a structural twin in
code: every harness that invents its own result container also invents its
own filtering, grouping and rendering.  A :class:`ResultFrame` is the one
container they all share -- a *tidy* table with **one row per repetition per
metric**:

    {"experiment": "survey", "fs": "ext4", "workload": "postmark",
     "seed": 43, "repetition": 1, "metric": "throughput_ops_s",
     "value": 8123.4}

Axis columns (``fs``, ``workload``, ``seed``, ``cache_mb``, ...) identify the
measurement; ``metric``/``value`` carry what was measured.  Because the shape
is uniform, one small verb set covers every analysis the bespoke result
classes used to hand-roll: :meth:`~ResultFrame.filter`,
:meth:`~ResultFrame.group_by`, :meth:`~ResultFrame.pivot`,
:meth:`~ResultFrame.summary`, plus JSONL/CSV round-trips for archiving
results next to a paper.

:meth:`ResultFrame.pivot` returns a :class:`PivotTable`, the single renderer
behind the figure/table/ survey reports (see ``repro.experiments``): the old
per-result-class table code is now "pivot the frame, render it".
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.core.results import RunResult
from repro.core.stats import SummaryStatistics, summarize

#: Aggregations understood by :meth:`ResultFrame.pivot`.  ``first`` and
#: ``count`` accept any cell type; the numeric ones require numbers.
_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "mean": lambda values: sum(values) / len(values),
    "sum": sum,
    "min": min,
    "max": max,
    "count": len,
    "first": lambda values: values[0],
}


def run_metrics(run: RunResult) -> Dict[str, float]:
    """The scalar metrics of one repetition, in canonical order.

    These are the per-repetition quantities every harness reports somewhere;
    one tidy row is emitted per entry.  Timelines and histograms stay on the
    :class:`~repro.core.results.RunResult` (the frame is for cross-cell
    analysis, not for replacing the rich containers).

    Multi-client repetitions additionally report the cross-client summaries
    (client count, minimum per-client throughput, mean and worst-case exact
    percentiles); traced repetitions additionally report one
    ``attr_<category>_ns`` total per attribution category (dashes become
    underscores, e.g. ``attr_gc_pause_ns``).  Untraced single-client runs
    emit exactly the legacy twelve metrics, so existing frames, pivots and
    JSONL exports are unchanged.
    """
    metrics = {
        "throughput_ops_s": run.throughput_ops_s,
        "operations": run.operations,
        "measured_duration_s": run.measured_duration_s,
        "warmup_duration_s": run.warmup_duration_s,
        "mean_latency_ns": run.mean_latency_ns,
        "p95_latency_ns": run.p95_latency_ns,
        "p99_latency_ns": run.p99_latency_ns,
        "cache_hit_ratio": run.cache_hit_ratio,
        "device_reads": run.device_reads,
        "device_writes": run.device_writes,
        "bytes_read": run.bytes_read,
        "bytes_written": run.bytes_written,
    }
    if run.client_metrics:
        from repro.core.concurrency import client_summary_metrics

        metrics.update(client_summary_metrics(run.client_metrics))
    if run.attribution:
        totals = run.attribution.get("totals", {})
        for category in run.attribution.get("categories", ()):
            metrics[f"attr_{category.replace('-', '_')}_ns"] = float(totals.get(category, 0.0))
    return metrics


def rows_for_run(axes: Mapping[str, Any], run: RunResult) -> List[Dict[str, Any]]:
    """Tidy rows (one per metric) for one repetition measured at ``axes``."""
    identity = dict(axes)
    identity.setdefault("seed", run.seed)
    identity.setdefault("repetition", run.repetition)
    return [
        {**identity, "metric": metric, "value": value}
        for metric, value in run_metrics(run).items()
    ]


@dataclass
class PivotTable:
    """A rectangular view of a frame: one axis down, one across.

    Produced by :meth:`ResultFrame.pivot`; render with :meth:`render` (this is
    the shared table renderer behind the figure/table reports) or read cells
    programmatically with :meth:`value`.
    """

    index_columns: Tuple[str, ...]
    column_name: str
    row_keys: List[Tuple[Any, ...]]
    col_keys: List[Any]
    cells: Dict[Tuple[Tuple[Any, ...], Any], Any]

    def value(self, row_key: Union[Any, Tuple[Any, ...]], col_key: Any) -> Any:
        """The aggregated cell at ``(row_key, col_key)`` (``None`` if empty)."""
        if not isinstance(row_key, tuple):
            row_key = (row_key,)
        return self.cells.get((row_key, col_key))

    def render(
        self,
        index_headers: Optional[Sequence[str]] = None,
        column_header: Optional[Callable[[Any], str]] = None,
        value_format: Optional[Union[str, Callable[[Any], str]]] = None,
        index_format: Optional[Union[str, Callable[[Any], str]]] = None,
        missing: str = "",
    ) -> str:
        """Render as an aligned plain-text table.

        ``index_headers`` overrides the leading column titles,
        ``column_header`` maps a column key to its title (e.g. append a
        unit), and ``value_format``/``index_format`` are ``str.format``
        patterns or callables applied to cells / index values.
        """
        from repro.core.report import format_table

        def _fmt(pattern, value):
            if value is None:
                return missing
            if pattern is None:
                return str(value)
            if callable(pattern):
                return pattern(value)
            return pattern.format(value)

        headers = list(index_headers) if index_headers else list(self.index_columns)
        if len(headers) != len(self.index_columns):
            raise ValueError("index_headers must match the number of index columns")
        headers += [column_header(key) if column_header else str(key) for key in self.col_keys]
        rows = []
        for row_key in self.row_keys:
            row = [_fmt(index_format, part) for part in row_key]
            row += [
                _fmt(value_format, self.cells.get((row_key, col_key)))
                for col_key in self.col_keys
            ]
            rows.append(row)
        return format_table(headers, rows)


class ResultFrame:
    """A tidy table of measurement records (one row per repetition x metric).

    Rows are plain dictionaries; the frame guarantees nothing about their
    keys beyond what the constructor was given, which is what lets the same
    verbs serve per-repetition metrics, per-interval timelines and survey
    usage counts alike.
    """

    def __init__(self, rows: Optional[Iterable[Mapping[str, Any]]] = None) -> None:
        self._rows: List[Dict[str, Any]] = [dict(row) for row in rows or []]

    # ------------------------------------------------------------ construction
    @classmethod
    def from_cells(
        cls, cells: Iterable[Tuple[Mapping[str, Any], Iterable[RunResult]]]
    ) -> "ResultFrame":
        """Build a frame from ``(axes, runs)`` pairs (one pair per grid cell)."""
        frame = cls()
        for axes, runs in cells:
            for run in runs:
                frame._rows.extend(rows_for_run(axes, run))
        return frame

    def append(self, row: Mapping[str, Any]) -> None:
        """Add one record."""
        self._rows.append(dict(row))

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Add many records."""
        for row in rows:
            self.append(row)

    # ---------------------------------------------------------------- basics
    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The records themselves (the frame's own list; copy before mutating)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResultFrame) and self._rows == other._rows

    def __add__(self, other: "ResultFrame") -> "ResultFrame":
        if not isinstance(other, ResultFrame):
            return NotImplemented
        return ResultFrame(self._rows + other._rows)

    def columns(self) -> List[str]:
        """Every key appearing in any row, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self._rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def unique(self, column: str) -> List[Any]:
        """Distinct values of one column, in first-seen order (absent -> None)."""
        seen: Dict[Any, None] = {}
        for row in self._rows:
            seen.setdefault(row.get(column))
        return list(seen)

    def metrics(self) -> List[str]:
        """Distinct metric names present, in first-seen order."""
        return [metric for metric in self.unique("metric") if metric is not None]

    # ---------------------------------------------------------------- queries
    def filter(
        self,
        predicate: Optional[Callable[[Mapping[str, Any]], bool]] = None,
        **equals: Any,
    ) -> "ResultFrame":
        """Rows matching every ``column=value`` pair (and ``predicate`` if given)."""
        selected = []
        for row in self._rows:
            if any(row.get(column) != value for column, value in equals.items()):
                continue
            if predicate is not None and not predicate(row):
                continue
            selected.append(row)
        return ResultFrame(selected)

    def values(self, metric: Optional[str] = None, **equals: Any) -> List[Any]:
        """The ``value`` column of the matching rows (optionally one metric)."""
        if metric is not None:
            equals["metric"] = metric
        return [row.get("value") for row in self.filter(**equals)]

    def summary(self, metric: str = "throughput_ops_s", **equals: Any) -> SummaryStatistics:
        """Summary statistics of one metric across the matching rows."""
        return summarize([float(v) for v in self.values(metric=metric, **equals)])

    def group_by(self, *columns: str) -> List[Tuple[Tuple[Any, ...], "ResultFrame"]]:
        """Split into per-key sub-frames, keys in first-seen order."""
        if not columns:
            raise ValueError("group_by needs at least one column")
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for row in self._rows:
            key = tuple(row.get(column) for column in columns)
            groups.setdefault(key, []).append(row)
        return [(key, ResultFrame(rows)) for key, rows in groups.items()]

    def pivot(
        self,
        index: Union[str, Sequence[str]],
        columns: str,
        values: str = "value",
        aggregate: str = "mean",
    ) -> PivotTable:
        """Cross-tabulate: ``index`` down, distinct ``columns`` values across.

        Cells aggregate the ``values`` column of every matching row with one
        of ``mean``/``sum``/``min``/``max``/``count``/``first``.  Row and
        column keys keep first-seen order, so pivoting an ordered frame
        reproduces the order its producer intended.
        """
        index_columns = (index,) if isinstance(index, str) else tuple(index)
        if not index_columns:
            raise ValueError("pivot needs at least one index column")
        try:
            fold = _AGGREGATES[aggregate]
        except KeyError:
            known = ", ".join(sorted(_AGGREGATES))
            raise ValueError(f"unknown aggregate {aggregate!r} (known: {known})") from None

        row_keys: Dict[Tuple[Any, ...], None] = {}
        col_keys: Dict[Any, None] = {}
        buckets: Dict[Tuple[Tuple[Any, ...], Any], List[Any]] = {}
        for row in self._rows:
            row_key = tuple(row.get(column) for column in index_columns)
            col_key = row.get(columns)
            row_keys.setdefault(row_key)
            col_keys.setdefault(col_key)
            buckets.setdefault((row_key, col_key), []).append(row.get(values))
        try:
            cells = {key: fold(bucket) for key, bucket in buckets.items()}
        except TypeError:
            raise TypeError(
                f"aggregate {aggregate!r} needs numeric values; "
                "use aggregate='first' for non-numeric cells"
            ) from None
        return PivotTable(
            index_columns=index_columns,
            column_name=columns,
            row_keys=list(row_keys),
            col_keys=list(col_keys),
            cells=cells,
        )

    # ------------------------------------------------------------- interchange
    def to_jsonl(self, destination: Union[str, TextIO]) -> None:
        """Write one JSON object per line (the lossless interchange format)."""
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                self.to_jsonl(handle)
            return
        for row in self._rows:
            destination.write(json.dumps(row, sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, source: Union[str, TextIO]) -> "ResultFrame":
        """Read a frame written by :meth:`to_jsonl`."""
        if isinstance(source, str):
            with open(source, "r") as handle:
                return cls.from_jsonl(handle)
        return cls(json.loads(line) for line in source if line.strip())

    def to_csv(self, destination: Union[str, TextIO]) -> None:
        """Write as CSV with the union of all columns as the header.

        ``None`` becomes the empty string; :meth:`from_csv` reverses that and
        restores int/float/bool types heuristically, so frames of scalar
        records round-trip.  JSONL is the lossless format for anything else.
        """
        if isinstance(destination, str):
            with open(destination, "w", newline="") as handle:
                self.to_csv(handle)
            return
        columns = self.columns()
        writer = csv.writer(destination)
        writer.writerow(columns)
        for row in self._rows:
            writer.writerow(["" if row.get(c) is None else row.get(c) for c in columns])

    @classmethod
    def from_csv(cls, source: Union[str, TextIO]) -> "ResultFrame":
        """Read a frame written by :meth:`to_csv` (types restored heuristically)."""
        if isinstance(source, str):
            with open(source, "r", newline="") as handle:
                return cls.from_csv(handle)
        reader = csv.reader(source)
        try:
            columns = next(reader)
        except StopIteration:
            return cls()
        return cls(
            {column: _parse_csv_value(cell) for column, cell in zip(columns, row)}
            for row in reader
        )

    def to_csv_text(self) -> str:
        """The CSV serialisation as a string (convenience for small frames)."""
        buffer = io.StringIO()
        self.to_csv(buffer)
        return buffer.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultFrame({len(self._rows)} rows, columns={self.columns()})"


def _parse_csv_value(cell: str) -> Any:
    """Invert the CSV stringification: '' -> None, numbers -> int/float."""
    if cell == "":
        return None
    if cell == "True":
        return True
    if cell == "False":
        return False
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell
