"""File system evaluation dimensions (Section 2 of the paper).

The paper proposes evaluating file systems along explicit dimensions rather
than with single numbers:

* **I/O** -- the device underneath the file system (bandwidth/latency by
  request size);
* **On-disk** -- the efficacy of the on-disk data and metadata layout;
* **Caching** -- cache warm-up, eviction and prefetch behaviour (what
  "warm-cache" or small-working-set benchmarks actually measure);
* **Meta-data** -- namespace operations (create, delete, stat, rename);
* **Scaling** -- behaviour as load (threads, clients, file counts) grows.

Each benchmark covers each dimension at one of three levels, matching the
paper's Table 1 legend: it may *isolate* the dimension ("•"), merely
*exercise* it without isolating it ("◦"), or depend entirely on the trace /
production workload being replayed ("⋆").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List


class Dimension(str, Enum):
    """The five evaluation dimensions proposed by the paper."""

    IO = "io"
    ONDISK = "ondisk"
    CACHING = "caching"
    METADATA = "metadata"
    SCALING = "scaling"

    @property
    def title(self) -> str:
        """Human-readable name used in report headers."""
        return _DIMENSION_TITLES[self]

    @property
    def description(self) -> str:
        """One-sentence description of what the dimension measures."""
        return _DIMENSION_DESCRIPTIONS[self]

    @classmethod
    def ordered(cls) -> List["Dimension"]:
        """Dimensions in the order Table 1 lists them."""
        return [cls.IO, cls.ONDISK, cls.CACHING, cls.METADATA, cls.SCALING]


_DIMENSION_TITLES: Dict[Dimension, str] = {
    Dimension.IO: "I/O",
    Dimension.ONDISK: "On-disk",
    Dimension.CACHING: "Caching",
    Dimension.METADATA: "Meta-data",
    Dimension.SCALING: "Scaling",
}

_DIMENSION_DESCRIPTIONS: Dict[Dimension, str] = {
    Dimension.IO: "Bandwidth and latency of the underlying device for various request sizes.",
    Dimension.ONDISK: "Efficacy of the on-disk data and meta-data layout, measured from a cold cache.",
    Dimension.CACHING: "Cache warm-up, eviction and prefetching behaviour (not raw memory speed).",
    Dimension.METADATA: "Namespace operations: create, delete, stat, rename, directory scans.",
    Dimension.SCALING: "Behaviour as offered load grows (threads, clients, population size).",
}


class Coverage(str, Enum):
    """How well a benchmark covers a dimension (the Table 1 legend)."""

    ISOLATES = "isolates"
    EXERCISES = "exercises"
    TRACE_DEPENDENT = "trace"
    NONE = "none"

    @property
    def symbol(self) -> str:
        """The symbol used in the paper's Table 1."""
        return {
            Coverage.ISOLATES: "*",
            Coverage.EXERCISES: "o",
            Coverage.TRACE_DEPENDENT: "#",
            Coverage.NONE: " ",
        }[self]

    @property
    def score(self) -> float:
        """A numeric coverage score used for aggregate coverage metrics."""
        return {
            Coverage.ISOLATES: 1.0,
            Coverage.EXERCISES: 0.5,
            Coverage.TRACE_DEPENDENT: 0.25,
            Coverage.NONE: 0.0,
        }[self]


@dataclass
class DimensionVector:
    """Coverage of every dimension by one benchmark or workload."""

    coverage: Dict[Dimension, Coverage] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for dimension in Dimension:
            self.coverage.setdefault(dimension, Coverage.NONE)

    # ---------------------------------------------------------- constructors
    @classmethod
    def of(
        cls,
        isolates: Iterable[Dimension] = (),
        exercises: Iterable[Dimension] = (),
        trace: Iterable[Dimension] = (),
    ) -> "DimensionVector":
        """Build a vector from per-level dimension lists."""
        vector = cls()
        for dimension in trace:
            vector.coverage[Dimension(dimension)] = Coverage.TRACE_DEPENDENT
        for dimension in exercises:
            vector.coverage[Dimension(dimension)] = Coverage.EXERCISES
        for dimension in isolates:
            vector.coverage[Dimension(dimension)] = Coverage.ISOLATES
        return vector

    @classmethod
    def from_names(cls, names: Iterable[str], level: Coverage = Coverage.EXERCISES) -> "DimensionVector":
        """Build a vector from dimension-name strings (workload specs use strings)."""
        vector = cls()
        for name in names:
            vector.coverage[Dimension(name)] = level
        return vector

    # -------------------------------------------------------------- queries
    def __getitem__(self, dimension: Dimension) -> Coverage:
        return self.coverage[Dimension(dimension)]

    def covers(self, dimension: Dimension) -> bool:
        """True if the dimension is covered at any level."""
        return self[dimension] is not Coverage.NONE

    def isolates(self, dimension: Dimension) -> bool:
        """True if the dimension is isolated (Table 1 "•")."""
        return self[dimension] is Coverage.ISOLATES

    def covered_dimensions(self) -> List[Dimension]:
        """Dimensions covered at any level, in Table 1 order."""
        return [d for d in Dimension.ordered() if self.covers(d)]

    def isolation_score(self) -> float:
        """Aggregate coverage score in [0, 5]; higher means better isolation."""
        return sum(self[d].score for d in Dimension)

    def row_symbols(self) -> List[str]:
        """Per-dimension symbols in Table 1 column order."""
        return [self[d].symbol for d in Dimension.ordered()]

    def merge_max(self, other: "DimensionVector") -> "DimensionVector":
        """Combine two vectors, keeping the stronger coverage per dimension."""
        merged = DimensionVector()
        for dimension in Dimension:
            a, b = self[dimension], other[dimension]
            merged.coverage[dimension] = a if a.score >= b.score else b
        return merged

    def describe(self) -> str:
        """Readable summary, e.g. ``"isolates: caching; exercises: io"``."""
        parts = []
        for level in (Coverage.ISOLATES, Coverage.EXERCISES, Coverage.TRACE_DEPENDENT):
            names = [d.value for d in Dimension.ordered() if self[d] is level]
            if names:
                parts.append(f"{level.value}: {', '.join(names)}")
        return "; ".join(parts) if parts else "covers nothing"
