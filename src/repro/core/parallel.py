"""Parallel survey execution: process fan-out plus a persistent result cache.

The measurement protocol makes a full survey -- every benchmark on every file
system, repeated many times -- embarrassingly parallel: each repetition is a
pure function of ``(file system, workload spec, testbed, protocol, seed)``,
because the runner derives *all* randomness (stack, workload, environmental
noise) from ``config.seed + repetition``.  This module exploits that purity
twice:

* :class:`ParallelExecutor` fans repetitions out over a process pool.  The
  determinism guarantee is strict: a parallel run produces results
  **bit-identical** to a serial run of the same work units, because workers
  receive the exact seeds the serial loop would have used and no state is
  shared between repetitions.  ``n_workers=1`` (the default) runs in-process
  with no pool at all, so the serial path stays the trivially obvious one.

* :class:`ResultCache` persists finished repetitions keyed by
  :func:`cache_key`, a stable SHA-256 over the canonicalised
  ``(workload spec, testbed config, benchmark config, seed)`` tuple.
  Re-running a survey or suite skips every cell that has already been
  measured anywhere the cache directory is shared.  Because the key hashes
  the *inputs* of the pure function, a hit is exactly as trustworthy as a
  fresh measurement.

The work unit is one *repetition*, not one benchmark: that is the finest
grain at which the protocol is pure, and it keeps the pool busy even when a
survey has few (benchmark x file system) cells but many repetitions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.persistence import load_run_result, save_run_result
from repro.core.results import RepetitionSet, RunResult
from repro.core.runner import BenchmarkConfig, run_single_repetition
from repro.obs.metrics import MetricSource
from repro.obs.profile import phase as profile_phase
from repro.obs.telemetry import TelemetryEvent, TelemetrySink, UnitTiming, timed_execute
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.spec import WorkloadSpec

logger = logging.getLogger(__name__)

#: Bump when the simulation's physics change incompatibly, so stale caches
#: from older code cannot satisfy new runs.
#: v2: device-model coherence fixes (track-cache invalidation on overlapping
#: writes, arrival-order NOOP merging), ext4 model, type-tagged dict keys in
#: the canonical hash.
CACHE_FORMAT_VERSION = 2


# ------------------------------------------------------------------ hashing
def _canonical(value):
    """Reduce a config object to a JSON-stable structure for hashing.

    Dataclasses and plain objects become ``{"__kind__": <class>, ...fields}``
    dictionaries, enums their values, containers their canonicalised
    elements.  Two configurations hash equal iff this structure is equal, so
    anything that can change a measurement must surface here; unknown objects
    fall back to ``repr`` rather than being silently dropped.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name)) for f in dataclasses.fields(value)}
        return {"__kind__": type(value).__name__, **fields}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        # JSON keys must be strings, but ``str(key)`` alone collides
        # ``{1: x}`` with ``{"1": x}``, and ``sorted(value.items())`` raises
        # ``TypeError`` for mixed-type keys.  Tag every key with its type and
        # sort by the tagged form, which is total and collision-free.
        return {
            tagged: _canonical(item)
            for tagged, item in sorted(
                (f"{type(key).__name__}:{key!r}", item) for key, item in value.items()
            )
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if hasattr(value, "__dict__"):
        fields = {key: _canonical(item) for key, item in sorted(vars(value).items())}
        return {"__kind__": type(value).__name__, **fields}
    return repr(value)


def cache_key(
    fs_type: str,
    spec: WorkloadSpec,
    config: BenchmarkConfig,
    seed: int,
    testbed: Optional[TestbedConfig] = None,
    snapshot_fingerprint: Optional[str] = None,
) -> str:
    """Stable identity of one measured repetition.

    The key covers everything the measurement depends on: the file system,
    the full workload spec, the testbed, the protocol parameters and the
    *effective* seed of the repetition.  ``config.seed`` and
    ``config.repetitions`` are deliberately normalised out -- the runner uses
    ``config.seed + repetition`` for every random source, so repetition 1 of
    a seed-42 run and repetition 0 of a seed-43 run are the same measurement
    and share a cache entry.

    ``snapshot_fingerprint`` identifies the aged starting state when the
    repetition runs against a restored
    :class:`~repro.aging.snapshot.StateSnapshot`; it is omitted from the
    payload when absent, so within one ``CACHE_FORMAT_VERSION`` fresh-state
    keys do not depend on the aging feature at all.  (Bumping the format
    version -- as the v2 physics fixes did -- deliberately invalidates every
    older cache entry, fresh and aged alike.)

    ``config.clients`` gets the same treatment as the snapshot axis: it is
    lifted out of the canonical config dictionary and recorded as a
    top-level ``clients`` entry only when greater than one, so every
    ``clients=1`` key -- and with it every cache entry ever written --
    stays byte-identical to the pre-concurrency era.

    ``config.trace`` is stripped unconditionally and never re-added:
    tracing is observability, not physics (the measurement is bit-identical
    with it on or off -- see :mod:`repro.obs`), so a traced run and an
    untraced run are the *same* measurement and must share a cache entry.
    """
    config_payload = _canonical(replace(config, seed=0, repetitions=1))
    clients = int(getattr(config, "clients", 1) or 1)
    if isinstance(config_payload, dict):
        config_payload.pop("clients", None)
        config_payload.pop("trace", None)
    payload = {
        "cache_format": CACHE_FORMAT_VERSION,
        "fs_type": fs_type,
        "spec": _canonical(spec),
        "testbed": _canonical(testbed if testbed is not None else paper_testbed()),
        "config": config_payload,
        "seed": int(seed),
    }
    if snapshot_fingerprint is not None:
        payload["snapshot"] = str(snapshot_fingerprint)
    if clients > 1:
        payload["clients"] = clients
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- work units
@dataclass
class WorkUnit:
    """One repetition of one benchmark configuration: the unit of fan-out.

    Attributes
    ----------
    fs_type:
        File system to mount for this repetition.
    spec:
        The workload description (must be picklable; all shipped specs are).
    config:
        Measurement protocol.  The unit runs repetition ``repetition`` of
        this config, i.e. with effective seed ``config.seed + repetition``.
    repetition:
        Zero-based repetition index.
    testbed:
        Simulated machine; ``None`` means the paper's testbed.
    group:
        Label of the :class:`RepetitionSet` this unit belongs to; units with
        the same group are reassembled into one set by
        :meth:`ParallelExecutor.run_repetition_sets`.
    snapshot_path, snapshot_fingerprint:
        The aging axis: when set, the repetition starts from the
        :class:`~repro.aging.snapshot.StateSnapshot` stored at
        ``snapshot_path`` (a path, so units stay picklable), and the
        fingerprint of that state joins the cache key.  The fingerprint is
        a pre-computed optimisation only: :meth:`key` derives it from the
        snapshot file itself when absent, so a unit carrying just the path
        can never collide with a fresh-state cache entry.
    """

    fs_type: str
    spec: WorkloadSpec
    config: BenchmarkConfig
    repetition: int = 0
    testbed: Optional[TestbedConfig] = None
    group: str = ""
    snapshot_path: Optional[str] = None
    snapshot_fingerprint: Optional[str] = None

    @property
    def seed(self) -> int:
        """The effective seed the runner will use for this repetition."""
        return self.config.seed + self.repetition

    def key(self) -> str:
        """Cache key of this unit (see :func:`cache_key`)."""
        fingerprint = self.snapshot_fingerprint
        if fingerprint is None and self.snapshot_path is not None:
            # Imported lazily: the aging subsystem sits above the core layer.
            from repro.aging.snapshot import snapshot_fingerprint

            fingerprint = snapshot_fingerprint(self.snapshot_path)
        return cache_key(
            self.fs_type,
            self.spec,
            self.config,
            self.seed,
            self.testbed,
            snapshot_fingerprint=fingerprint,
        )


def execute_unit(unit: WorkUnit) -> RunResult:
    """Run one work unit to completion.  Pure and picklable: this is the
    function shipped to pool workers."""
    return run_single_repetition(
        fs_type=unit.fs_type,
        spec=unit.spec,
        repetition=unit.repetition,
        testbed=unit.testbed,
        config=unit.config,
        snapshot_path=unit.snapshot_path,
    )


def group_label(benchmark_name: str, fs_type: str) -> str:
    """Label of the repetition set for one (benchmark, file system) cell.

    The single definition shared by unit expansion and result reassembly,
    matching the label the serial ``NanoBenchmark.run`` method uses.
    """
    return f"{benchmark_name}@{fs_type}"


def benchmark_units(
    benchmark,
    fs_type: str,
    testbed: Optional[TestbedConfig] = None,
    config: Optional[BenchmarkConfig] = None,
    snapshot_path: Optional[str] = None,
    snapshot_fingerprint: Optional[str] = None,
) -> List[WorkUnit]:
    """Expand one :class:`~repro.core.benchmark.NanoBenchmark` on one file
    system into its per-repetition work units.

    The spec is built once and shared by every repetition, exactly like the
    serial loop in ``BenchmarkRunner.run`` (the runner never mutates it), so
    even a workload factory with construction-time randomness keeps the
    serial contract and one cache identity per cell.  Factories are not
    picklable; the spec is, which is why units carry the spec itself.

    ``snapshot_path``/``snapshot_fingerprint`` put every repetition on the
    same aged starting state (see :class:`WorkUnit`).
    """
    effective = config or benchmark.config or BenchmarkConfig()
    effective.validate()  # fail here with a clear error, not per-unit in a worker
    spec = benchmark.build_workload()
    return [
        WorkUnit(
            fs_type=fs_type,
            spec=spec,
            config=effective,
            repetition=repetition,
            testbed=testbed,
            group=group_label(benchmark.name, fs_type),
            snapshot_path=snapshot_path,
            snapshot_fingerprint=snapshot_fingerprint,
        )
        for repetition in range(effective.repetitions)
    ]


# -------------------------------------------------------------- result cache
@dataclass
class CacheStats(MetricSource):
    """Hit/miss/store/corruption counters of one :class:`ResultCache`.

    ``hits`` counts every hit regardless of tier; ``pack_hits`` is the
    subset served from attached read-through packs, and ``blocks_read``
    mirrors the pack readers' decompressed-block counters (the ZS-style
    access-granularity metric) so the campaign report and any
    :class:`~repro.obs.metrics.MetricsRegistry` see cache efficiency in one
    uniform snapshot.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    pack_hits: int = 0
    blocks_read: int = 0

    derived_metrics = ("hit_ratio",)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Persistent cache of finished repetitions, one JSON file per cell.

    Entries live at ``<cache_dir>/<key[:2]>/<key>.json`` in the standard
    result format (:mod:`repro.core.persistence`), so a cache doubles as an
    archive: any entry can be loaded and analysed directly.  A corrupt loose
    entry is treated as a miss, counted in ``stats.corrupt``, and quarantined
    to ``<key>.json.corrupt`` so it cannot keep masquerading as a miss run
    after run.

    ``pack_paths`` adds a read-through tier of packed result artifacts
    (:mod:`repro.store`): a :meth:`get` consults the packs first, then the
    loose directory.  Packs are read-only and integrity-checked -- a
    corrupt pack *raises* (:class:`repro.store.format.StoreCorruptionError`)
    rather than degrading to a miss, because a pack is a distributed,
    fingerprinted artifact whose damage should stop the presses, not
    silently re-measure.  ``cache_dir=None`` with packs gives a pure
    read-only cache (``put`` discards, ``clear`` removes nothing).
    """

    def __init__(
        self, cache_dir: Optional[str] = None, pack_paths: Sequence[str] = ()
    ) -> None:
        if cache_dir is None and not pack_paths:
            raise ValueError("a ResultCache needs a cache_dir, pack_paths, or both")
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)
        self._packs = []
        if pack_paths:
            # Imported lazily: repro.store sits above the core layer.
            from repro.store.reader import PackReader

            self._packs = [PackReader(path) for path in pack_paths]

    @property
    def pack_paths(self) -> List[str]:
        """Paths of the attached read-through packs, in lookup order."""
        return [pack.path for pack in self._packs]

    def path_for(self, key: str) -> str:
        """Filesystem path of the loose entry for ``key``."""
        if self.cache_dir is None:
            raise ValueError("pack-only cache has no loose entry paths")
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        """Return the cached result for ``key``, or ``None`` on a miss.

        Lookup order: attached packs first (committed artifacts warm a fresh
        checkout), then the loose directory.
        """
        return self.lookup(key)[0]

    def lookup(self, key: str) -> "Tuple[Optional[RunResult], str]":
        """Like :meth:`get`, but also names the tier that answered.

        Returns ``(run, origin)`` with origin one of ``"pack"``, ``"loose"``
        or ``"miss"`` -- the distinction the telemetry event log records
        (``pack-hit`` vs ``cache-hit``) and the stats expose as
        ``pack_hits``.
        """
        run = self._pack_lookup(key)
        if run is not None:
            return run, "pack"
        if self.cache_dir is None:
            self.stats.misses += 1
            return None, "miss"
        path = self.path_for(key)
        try:
            run = load_run_result(path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None, "miss"
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self._quarantine(path)
            self.stats.misses += 1
            return None, "miss"
        self.stats.hits += 1
        return run, "loose"

    def _pack_lookup(self, key: str) -> Optional[RunResult]:
        """Consult the read-through packs; keeps the pack counters synced."""
        if not self._packs:
            return None
        try:
            for pack in self._packs:
                run = pack.get_run(key)
                if run is not None:
                    self.stats.hits += 1
                    self.stats.pack_hits += 1
                    return run
            return None
        finally:
            self.stats.blocks_read = sum(pack.blocks_read for pack in self._packs)

    def _quarantine(self, path: str) -> None:
        """Set a corrupt loose entry aside as ``<path>.corrupt``."""
        self.stats.corrupt += 1
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - unreadable *and* unmovable
            logger.warning("corrupt cache entry %s (could not quarantine)", path)
            return
        logger.warning("corrupt cache entry %s quarantined to %s.corrupt", path, path)

    def put(self, key: str, run: RunResult) -> None:
        """Store ``run`` under ``key`` (atomic: write-temp-then-rename).

        A pack-only cache silently discards stores: packs are immutable
        artifacts, and the caller's contract (``get`` after ``put`` may hit)
        is already satisfied by whichever pack made the ``put`` redundant.
        """
        if self.cache_dir is None:
            return
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with profile_phase("serialize"), os.fdopen(fd, "w") as handle:
                save_run_result(run, handle)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every loose entry (quarantined ones included); returns how
        many live entries were removed.  Attached packs are never touched."""
        if self.cache_dir is None:
            return 0
        removed = 0
        for directory, _, files in os.walk(self.cache_dir):
            for name in files:
                if name.endswith(".json"):
                    os.unlink(os.path.join(directory, name))
                    removed += 1
                elif name.endswith(".json.corrupt"):
                    os.unlink(os.path.join(directory, name))
        return removed

    def __len__(self) -> int:
        if self.cache_dir is None:
            return 0
        return sum(
            1
            for _, _, files in os.walk(self.cache_dir)
            for name in files
            if name.endswith(".json")
        )


# ----------------------------------------------------------------- executor
def _unit_event(kind: str, unit: WorkUnit, key: str, **extra) -> TelemetryEvent:
    """One telemetry lifecycle event describing ``unit`` (see repro.obs)."""
    return TelemetryEvent(
        kind=kind,
        group=unit.group or f"{unit.spec.name}@{unit.fs_type}",
        fs=unit.fs_type,
        workload=unit.spec.name,
        repetition=unit.repetition,
        seed=unit.seed,
        key=key,
        **extra,
    )


class ParallelExecutor:
    """Runs work units across processes, with optional result caching.

    Parameters
    ----------
    n_workers:
        Worker processes.  ``1`` (the default) executes in-process with no
        pool; ``None`` or ``0`` means one worker per CPU.
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely; every
        fresh result is stored on completion.
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetrySink`.  When attached
        the executor emits one lifecycle event per unit (``queued``, then a
        terminal ``cache-hit``/``pack-hit``/``exec-done``/``failed``, with
        ``exec-start`` carrying a fresh execution's true start stamp) and
        runs fresh units under the wall-clock phase profiler
        (:mod:`repro.obs.profile`).  Telemetry is observation only: results,
        cache keys and serialized payloads are byte-identical with a sink
        attached or not (pinned in ``tests/test_telemetry.py``).

    Determinism: results are returned in work-unit order and each unit's
    randomness is fully determined by its own seed, so the output is
    bit-identical for any worker count (and for any mix of cache hits and
    fresh executions).
    """

    def __init__(
        self,
        n_workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[TelemetrySink] = None,
    ) -> None:
        if n_workers is None or n_workers == 0:
            n_workers = os.cpu_count() or 1
        if n_workers < 0:
            raise ValueError("n_workers must be None or >= 0")
        self.n_workers = n_workers
        self.cache = cache
        self.telemetry = telemetry

    # ------------------------------------------------------------ execution
    def run_units(
        self,
        units: Sequence[WorkUnit],
        on_result: Optional[Callable[[WorkUnit, RunResult, bool], None]] = None,
    ) -> List[RunResult]:
        """Execute every unit (or fetch it from cache); results in unit order.

        ``on_result(unit, run, cached)`` is a streaming progress hook: it
        fires for every cache hit during the initial scan and then for every
        fresh result as it completes (completion order under a pool).  The
        returned list is unaffected -- still unit order, still bit-identical
        for any worker count.

        With a telemetry sink attached, each unit's events are emitted
        *before* its ``on_result`` call, so downstream consumers (the
        Experiment streaming callbacks, the progress reporter) always
        observe a unit whose event log is already terminal.  A unit that
        raises emits a ``failed`` event first and then propagates the
        exception unchanged.
        """
        units = list(units)
        results: List[Optional[RunResult]] = [None] * len(units)
        sink = self.telemetry

        pending: List[int] = []
        keys: Dict[int, str] = {}
        for index, unit in enumerate(units):
            if self.cache is not None or sink is not None:
                keys[index] = unit.key()
            if sink is not None:
                sink.emit(_unit_event("queued", unit, keys[index]))
            if self.cache is not None:
                cached, origin = self.cache.lookup(keys[index])
                if cached is not None:
                    # The measurement depends only on the effective seed; the
                    # repetition index is bookkeeping relative to *this* run.
                    cached.repetition = unit.repetition
                    results[index] = cached
                    if sink is not None:
                        sink.emit(
                            _unit_event(
                                "pack-hit" if origin == "pack" else "cache-hit",
                                unit,
                                keys[index],
                            )
                        )
                    if on_result is not None:
                        on_result(unit, cached, True)
                    continue
            pending.append(index)

        def _store(
            index: int, run: RunResult, timing: Optional[UnitTiming] = None
        ) -> None:
            self._cache_put(keys.get(index), run, timing)
            if sink is not None and timing is not None:
                sink.emit(
                    _unit_event(
                        "exec-start", units[index], keys[index], worker=timing.pid
                    ),
                    t_s=sink.to_sink_time(timing.started_epoch_s),
                )
                sink.emit(
                    _unit_event(
                        "exec-done",
                        units[index],
                        keys[index],
                        wall_s=timing.wall_s,
                        worker=timing.pid,
                        phases=timing.phases,
                    ),
                    t_s=sink.to_sink_time(timing.ended_epoch_s),
                )
            results[index] = run
            if on_result is not None:
                on_result(units[index], run, False)

        self._execute([units[i] for i in pending], pending, _store, keys)
        return results  # type: ignore[return-value]

    def _cache_put(
        self, key: Optional[str], run: RunResult, timing: Optional[UnitTiming]
    ) -> None:
        """Store a fresh result; under telemetry, measure the serialization.

        The ``serialize`` phase happens in the parent process (the worker
        never touches the cache), so it is bracketed here with a private
        profiler and folded into the unit's phase totals before the
        ``exec-done`` event is emitted.
        """
        if self.cache is None or key is None:
            return
        if timing is None:
            self.cache.put(key, run)
            return
        from repro.obs import profile

        previous = profile.active()
        profiler = profile.enable()
        try:
            self.cache.put(key, run)
        finally:
            if previous is not None:
                profile.enable(previous)
            else:
                profile.disable()
        for name, seconds in profiler.totals().items():
            timing.phases[name] = timing.phases.get(name, 0.0) + seconds

    def run_repetition_sets(
        self,
        units: Sequence[WorkUnit],
        on_result: Optional[Callable[[WorkUnit, RunResult, bool], None]] = None,
    ) -> Dict[str, RepetitionSet]:
        """Execute units and reassemble them into per-group repetition sets.

        Groups appear in first-encounter order and each set's runs stay in
        unit order, so serial and parallel assembly are indistinguishable.
        ``on_result`` streams per-unit completions (see :meth:`run_units`).
        """
        units = list(units)
        runs = self.run_units(units, on_result=on_result)
        sets: Dict[str, RepetitionSet] = {}
        for unit, run in zip(units, runs):
            label = unit.group or f"{unit.spec.name}@{unit.fs_type}"
            if label not in sets:
                sets[label] = RepetitionSet(label=label)
            sets[label].add(run)
        return sets

    # ------------------------------------------------------------- internals
    def _run_local(self, unit: WorkUnit, key: str):
        """Execute one unit in-process, returning ``store`` arguments.

        Without a sink this is a plain ``execute_unit`` call -- the
        telemetry-off path stays structurally identical to before the
        feature existed.  With a sink, the unit runs under the phase
        profiler and a ``failed`` event is emitted before any exception
        propagates, so no unit ever vanishes from the event log.
        """
        sink = self.telemetry
        if sink is None:
            return (execute_unit(unit),)
        try:
            run, timing = timed_execute(unit)
        except Exception as error:
            sink.emit(_unit_event("failed", unit, key, error=repr(error)))
            raise
        return (run, timing)

    def _execute(
        self,
        units: List[WorkUnit],
        indices: List[int],
        store: Callable[..., None],
        keys: Dict[int, str],
    ) -> None:
        """Run ``units`` and hand each result to ``store(original_index, run)``.

        Delivery order is completion order (so progress hooks stream), but
        ``store`` places results by index, so callers always observe unit
        order.  Each index is delivered exactly once.
        """
        if not units:
            return
        sink = self.telemetry
        if self.n_workers == 1 or len(units) == 1:
            for index, unit in zip(indices, units):
                store(index, *self._run_local(unit, keys.get(index, "")))
            return
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        workers = min(self.n_workers, len(units))
        delivered = set()
        run_fn = execute_unit if sink is None else timed_execute
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(run_fn, unit): position
                    for position, unit in enumerate(units)
                }
                for future in as_completed(futures):
                    position = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as error:
                        if sink is not None:
                            sink.emit(
                                _unit_event(
                                    "failed",
                                    units[position],
                                    keys.get(indices[position], ""),
                                    error=repr(error),
                                )
                            )
                        raise
                    if sink is None:
                        store(indices[position], outcome)
                    else:
                        run, timing = outcome
                        store(indices[position], run, timing)
                    delivered.add(position)
        except BrokenProcessPool:  # pragma: no cover - sandboxed hosts
            # Workers could not be spawned (hosts that forbid subprocess
            # creation) or died wholesale; re-run the undelivered remainder
            # serially -- same results, just slower.  Errors raised *by a
            # unit* are not caught here: they propagate as themselves.
            for position, unit in enumerate(units):
                if position not in delivered:
                    store(
                        indices[position],
                        *self._run_local(unit, keys.get(indices[position], "")),
                    )
