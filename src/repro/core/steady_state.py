"""Warm-up trimming and steady-state detection.

The paper's Figure 1 protocol runs each configuration for 20 minutes "but to
ensure steady-state results we report only the last minute", and Figure 2
shows why that choice is itself a decision that hides information.  This
module provides the mechanical pieces:

* :func:`trim_warmup` -- drop a fixed fraction or duration of the run;
* :func:`detect_steady_state` -- find the first interval from which the
  throughput series is statistically stable (sliding-window coefficient of
  variation plus a trend test);
* :class:`SteadyStateDetector` -- the same logic in incremental form so a
  runner can stop a run early once stability is reached.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence


def trim_warmup(values: Sequence[float], fraction: float = 0.5) -> List[float]:
    """Drop the first ``fraction`` of a series (crude but common practice)."""
    if not (0.0 <= fraction < 1.0):
        raise ValueError("fraction must be in [0, 1)")
    values = list(values)
    start = int(len(values) * fraction)
    return values[start:]


def _window_is_steady(window: Sequence[float], cov_threshold: float, slope_threshold: float) -> bool:
    mean = statistics.fmean(window)
    if mean == 0:
        return all(v == 0 for v in window)
    cov = (statistics.stdev(window) / abs(mean)) if len(window) > 1 else 0.0
    if cov > cov_threshold:
        return False
    # Least-squares slope, normalised by the mean per step.
    n = len(window)
    xs = range(n)
    x_mean = (n - 1) / 2.0
    denom = sum((x - x_mean) ** 2 for x in xs)
    if denom == 0:
        return True
    slope = sum((x - x_mean) * (y - mean) for x, y in zip(xs, window)) / denom
    return abs(slope / mean) <= slope_threshold


def detect_steady_state(
    series: Sequence[float],
    window: int = 5,
    cov_threshold: float = 0.10,
    slope_threshold: float = 0.02,
) -> Optional[int]:
    """Index of the first sample from which the series is steady, or None.

    A window of ``window`` consecutive samples is considered steady when its
    coefficient of variation is at most ``cov_threshold`` and its normalised
    linear trend is at most ``slope_threshold`` per sample.  The returned
    index is the start of the first steady window.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    values = [float(v) for v in series]
    if len(values) < window:
        return None
    for start in range(0, len(values) - window + 1):
        if _window_is_steady(values[start : start + window], cov_threshold, slope_threshold):
            return start
    return None


def steady_state_values(
    series: Sequence[float],
    window: int = 5,
    cov_threshold: float = 0.10,
    slope_threshold: float = 0.02,
) -> List[float]:
    """The portion of the series after steady state is reached (empty if never)."""
    index = detect_steady_state(series, window, cov_threshold, slope_threshold)
    if index is None:
        return []
    return [float(v) for v in series[index:]]


@dataclass
class SteadyStateDetector:
    """Incremental steady-state detection for use inside a running benchmark.

    Feed per-interval throughputs with :meth:`observe`; :attr:`steady_since`
    holds the index of the first steady window once one has been seen.
    """

    window: int = 5
    cov_threshold: float = 0.10
    slope_threshold: float = 0.02

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be at least 2")
        self._values: List[float] = []
        self.steady_since: Optional[int] = None

    def observe(self, value: float) -> bool:
        """Add one observation; returns True once steady state has been reached."""
        self._values.append(float(value))
        if self.steady_since is not None:
            return True
        if len(self._values) < self.window:
            return False
        start = len(self._values) - self.window
        if _window_is_steady(
            self._values[start:], self.cov_threshold, self.slope_threshold
        ):
            self.steady_since = start
            return True
        return False

    @property
    def is_steady(self) -> bool:
        """True once a steady window has been observed."""
        return self.steady_since is not None

    def observed(self) -> List[float]:
        """All observations so far."""
        return list(self._values)

    def warmup_intervals(self) -> Optional[int]:
        """Number of intervals before steady state (None if not yet steady)."""
        return self.steady_since
