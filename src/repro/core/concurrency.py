"""Deterministic multi-client concurrency in virtual time.

The paper's hidden-state argument does not stop at aged file systems and
preconditioned SSDs: real machines run *contending* workloads, and the I/O
scheduler, the journal's commit batching, delayed allocation and FTL garbage
collection only show their true behaviour under queue pressure.  This module
puts N client sessions on one shared VFS -> file system -> block-device
stack without surrendering the repository's core guarantee -- bit-identical
reproducibility.

There are no threads and no wall clock anywhere.  Each client owns a
*cursor*: the virtual timestamp at which its next operation would issue
(i.e. when its previous operation completed).  The event loop repeatedly
picks the client with the earliest cursor (ties broken by client index),
rewinds the shared :class:`~repro.storage.clock.VirtualClock` to that
cursor, executes exactly one operation via
:meth:`~repro.workloads.spec.WorkloadEngine.step`, and reads the clock back
as the client's new cursor.  Interleaving is therefore a pure function of
simulated completion times: a client whose operation stalls behind the
device queue or a journal commit naturally falls behind, exactly as a
blocked process would on real hardware.

Invariants the loop maintains (see ``docs/architecture.md`` section 7):

* **Issue times are non-decreasing.**  The loop always dispatches the
  minimal cursor, so the clock only ever *rewinds* from the completion time
  of the previous operation back to the (later-or-equal than last issue)
  cursor of the next client.  Shared state that keys off "now" -- the
  device-queue horizon, journal commit deadlines -- observes a monotone
  sequence of issue times.
* **Contention is emergent, not modelled.**  Clients share the page cache,
  the allocator, the journal and the single device queue
  (``VFS._device_busy_until_ns``); queueing delay appears in a client's
  latency because its operation finds the device horizon already pushed out
  by other clients, not because any code special-cases concurrency.
* **Per-client randomness is hash-derived.**  Client ``i`` of a repetition
  with effective seed ``s`` seeds its engine with
  :func:`derive_client_seed`\\ ``(s, i)`` -- a stable BLAKE2b hash, not
  ``s + i``, so client streams neither overlap each other nor collide with
  the ``config.seed + repetition`` arithmetic of neighbouring repetitions.
* **One client is the legacy path.**  With a single session the loop
  degenerates to "rewind to your own completion time" (a no-op), so
  ``clients=1`` measurements remain bit-identical to the serial engine --
  the runner does not even enter this module for them.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.workloads.spec import WorkloadEngine, WorkloadSpec

__all__ = [
    "derive_client_seed",
    "nearest_rank_percentile",
    "client_metrics",
    "client_summary_metrics",
    "ClientSession",
    "per_client_spec",
    "build_sessions",
    "run_window",
]


# ----------------------------------------------------------------- seeding
def derive_client_seed(base_seed: int, client_index: int) -> int:
    """A stable, collision-resistant per-client seed.

    Hashing ``(base_seed, client_index)`` instead of computing
    ``base_seed + client_index`` matters twice over: the runner already uses
    ``config.seed + repetition`` as the effective seed, so additive client
    seeds would make client 1 of repetition 0 replay client 0 of repetition
    1; and adjacent integer seeds feed the Mersenne Twister visibly
    correlated init vectors.  The BLAKE2b digest is part of the determinism
    contract -- changing it changes every multi-client measurement.
    """
    if client_index < 0:
        raise ValueError("client_index must be non-negative")
    message = f"fsbench-client:{int(base_seed)}:{int(client_index)}".encode("ascii")
    digest = hashlib.blake2b(message, digest_size=8).digest()
    # Keep the seed in the non-negative 63-bit range: comfortably inside the
    # exact-integer range of every serializer the results pass through.
    return int.from_bytes(digest, "big") >> 1


# ------------------------------------------------------------- percentiles
def nearest_rank_percentile(values: Sequence[float], pct: float) -> float:
    """Exact nearest-rank percentile of an already *sorted* sample.

    ``rank = ceil(pct / 100 * n)`` (1-based), the textbook nearest-rank
    definition: every returned value is an actual sample, a single-sample
    client reports that sample for every percentile, and ties collapse
    naturally.  This is deliberately *not* the bucket-approximated
    :meth:`~repro.core.histogram.LatencyHistogram.percentile` -- per-client
    samples are small enough to keep exactly.
    """
    if not 0.0 < pct <= 100.0:
        raise ValueError("pct must be in (0, 100]")
    if not values:
        return 0.0
    rank = math.ceil(pct / 100.0 * len(values))
    return float(values[max(0, rank - 1)])


def client_metrics(
    latencies_by_client: Sequence[Sequence[float]], duration_s: float
) -> List[Dict[str, float]]:
    """Per-client scalar metrics from raw measured-window latencies.

    One dictionary per client (index order), each holding the client's
    operation count, throughput over the shared measured window, and exact
    mean/p50/p95/p99 latency.  Pure math over plain sequences so the fixture
    tests can pin hand-computed values.
    """
    rows: List[Dict[str, float]] = []
    for index, latencies in enumerate(latencies_by_client):
        ordered = sorted(float(value) for value in latencies)
        count = len(ordered)
        rows.append(
            {
                "client": float(index),
                "operations": float(count),
                "throughput_ops_s": count / duration_s if duration_s > 0 else 0.0,
                "mean_latency_ns": sum(ordered) / count if count else 0.0,
                "p50_latency_ns": nearest_rank_percentile(ordered, 50.0) if count else 0.0,
                "p95_latency_ns": nearest_rank_percentile(ordered, 95.0) if count else 0.0,
                "p99_latency_ns": nearest_rank_percentile(ordered, 99.0) if count else 0.0,
            }
        )
    return rows


def client_summary_metrics(rows: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Cross-client scalars for the tidy result frame.

    The frame wants one value per metric per repetition, so the per-client
    rows are folded into means (the typical client) and a worst-case p95
    (the unlucky client -- the number a latency SLO would care about).
    """
    if not rows:
        return {}
    count = len(rows)

    def mean(key: str) -> float:
        return sum(row[key] for row in rows) / count

    return {
        "clients": float(count),
        "client_throughput_min_ops_s": min(row["throughput_ops_s"] for row in rows),
        "client_p50_latency_ns": mean("p50_latency_ns"),
        "client_p95_latency_ns": mean("p95_latency_ns"),
        "client_p99_latency_ns": mean("p99_latency_ns"),
        "client_p95_latency_ns_worst": max(row["p95_latency_ns"] for row in rows),
    }


# ---------------------------------------------------------------- sessions
@dataclass
class ClientSession:
    """One client of a multi-client run: an engine plus its virtual cursor.

    Attributes
    ----------
    index:
        Zero-based client index (the tie-breaker in the event loop).
    seed:
        The engine's derived seed (see :func:`derive_client_seed`).
    engine:
        The client's :class:`~repro.workloads.spec.WorkloadEngine`, sharing
        the run's single stack with every other session.
    ready_ns:
        The cursor: virtual time at which this client's next operation
        issues (completion time of its previous one).
    operations, latencies_ns:
        Measured-window accounting, filled by the runner's per-session
        callback (not by the event loop, which is measurement-agnostic).
    """

    index: int
    seed: int
    engine: WorkloadEngine
    ready_ns: float = 0.0
    operations: int = 0
    latencies_ns: List[float] = field(default_factory=list)


def per_client_spec(spec: WorkloadSpec, client_index: int, clients: int) -> WorkloadSpec:
    """The spec a given client runs: same workload, private fileset namespace.

    Clients contend on the *stack* (cache, allocator, journal, device), not
    on path names: each client gets the fileset renamed into its own
    top-level directory (``<name>.c<i>``) so CREATE/DELETE churn from one
    client can never invalidate another client's file indices.  With one
    client the spec is returned untouched -- byte-identical filesets keep
    ``clients=1`` results identical to the legacy path.
    """
    if clients == 1:
        return spec
    fileset = replace(spec.fileset, name=f"{spec.fileset.name}.c{client_index}")
    return replace(spec, fileset=fileset)


def build_sessions(
    stack, spec: WorkloadSpec, base_seed: int, clients: int
) -> List[ClientSession]:
    """Construct the client sessions of one repetition, in client order.

    Engines are built against the shared ``stack`` with hash-derived seeds;
    filesets are not materialized here (the runner calls ``setup()`` so
    population stays outside any timed window, exactly like the serial
    path).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    sessions: List[ClientSession] = []
    for index in range(clients):
        seed = derive_client_seed(base_seed, index)
        engine = WorkloadEngine(stack, per_client_spec(spec, index, clients), seed=seed)
        sessions.append(
            ClientSession(index=index, seed=seed, engine=engine, ready_ns=stack.clock.now_ns)
        )
    return sessions


# -------------------------------------------------------------- event loop
def run_window(
    sessions: Sequence[ClientSession],
    clock,
    duration_s: Optional[float] = None,
    max_ops: Optional[int] = None,
    tracer=None,
) -> int:
    """Interleave the sessions for one window of virtual time.

    Repeatedly dispatches the session with the earliest ``ready_ns`` (ties
    broken by client index), rewinding the shared clock to that cursor so
    the operation issues at the right simulated instant, until every cursor
    has crossed the deadline or ``max_ops`` operations have run.  A client
    issues an operation iff its cursor is strictly before the deadline --
    the same boundary rule as the serial engine's ``run`` loop.

    On return the clock stands at the latest cursor (the window's completion
    time, matching where the serial engine leaves it), and the number of
    executed operations is returned.  The loop itself records nothing:
    measurement hooks stay on the engines' ``on_op`` callbacks.
    """
    if duration_s is None and max_ops is None:
        raise ValueError("provide duration_s, max_ops, or both")
    if not sessions:
        raise ValueError("run_window needs at least one session")

    origin_ns = clock.now_ns
    for session in sessions:
        # A client can never issue before the window opens; cursors from a
        # previous window (warm-up) that lag the shared clock snap forward.
        session.ready_ns = max(session.ready_ns, origin_ns)
    deadline_ns = origin_ns + duration_s * 1e9 if duration_s is not None else None

    executed = 0
    while True:
        if max_ops is not None and executed >= max_ops:
            break
        session = min(sessions, key=lambda s: (s.ready_ns, s.index))
        if deadline_ns is not None and session.ready_ns >= deadline_ns:
            # The earliest cursor is past the deadline, so every cursor is.
            break
        if tracer is not None:
            # Attribute everything the dispatched op charges to this client.
            tracer.current_client = session.index
        clock.reset(session.ready_ns)
        session.engine.step()
        session.ready_ns = clock.now_ns
        executed += 1

    clock.reset(max(session.ready_ns for session in sessions))
    return executed
